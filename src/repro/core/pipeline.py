"""Declarative pass pipelines over a shared optimization-pass registry.

The paper's flow (Figure 1) is a *sequence of independently-checked
optimization passes*; the seed reproduction hard-coded that sequence inside
``ContangoFlow.run``.  This module turns it into data:

* :class:`OptimizationPass` -- the protocol of one pipeline step: a
  registered ``name``, an optional Table III ``stage`` label, and
  ``run(ctx)`` over a shared :class:`PassContext`;
* :data:`PASS_REGISTRY` / :func:`register_pass` / :func:`resolve_pipeline`
  -- the registry that maps pipeline names (``"initial"``, ``"tbsz"``,
  ``"twsz"``, ``"twsn"``, ``"bwsn"``, plus the baseline synthesis passes)
  to pass factories, so flows, ablations and CLI runs are all just pass
  lists (``FlowConfig(pipeline=["initial", "twsz"])``);
* :class:`PipelineDriver` -- the driver that owns everything the stages
  share: evaluator construction, baseline-report threading from pass to
  pass, per-stage :class:`~repro.core.report.StageRecord` emission, and the
  final :class:`~repro.core.report.FlowResult` assembly.

Every pass hands its last accepted report to the next pass (and to the
stage record) as the baseline, so an unchanged tree is never re-evaluated;
together with the evaluator's stage cache this makes every candidate move
cost only its dirty stages.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

from repro.analysis.evaluator import (
    ClockNetworkEvaluator,
    EvaluationReport,
    EvaluatorConfig,
)
from repro.analysis.variation import default_variation_model
from repro.buffering.fast_buffering import insert_buffers_with_sizing
from repro.core.bottom_level import bottom_level_fine_tuning
from repro.core.buffer_sizing import iterative_buffer_sizing
from repro.core.buffer_sliding import slide_and_interleave_trunk
from repro.core.composite import analyze_composites, composite_ladder
from repro.core.config import FlowConfig
from repro.core.polarity import correct_sink_polarity, count_inverted_sinks
from repro.core.report import FlowResult, StageRecord
from repro.core.variation import VariationGate
from repro.core.wiresizing import top_down_wiresizing
from repro.core.wiresnaking import top_down_wiresnaking
from repro.cts.bst import build_bounded_skew_tree
from repro.cts.dme import build_zero_skew_tree
from repro.cts.obstacle_avoid import repair_obstacle_violations
from repro.cts.spec import ClockNetworkInstance
from repro.cts.tree import ClockTree
from repro.obs import METRICS, NULL_TRACER, TracerBase

__all__ = [
    "PassContext",
    "OptimizationPass",
    "PASS_REGISTRY",
    "register_pass",
    "available_passes",
    "resolve_pipeline",
    "PipelineDriver",
]


@dataclass
class PassContext:
    """Everything a pipeline pass may read or advance.

    ``tree`` and ``report`` start as ``None``: a construction pass (e.g.
    ``"initial"``) must set the tree before any optimization pass runs, and
    each pass that changes the tree leaves its last accepted evaluation in
    ``report`` so the driver and the next pass never re-evaluate an
    unchanged network.
    """

    instance: ClockNetworkInstance
    config: FlowConfig
    evaluator: ClockNetworkEvaluator
    result: FlowResult
    start_time: float
    tree: Optional[ClockTree] = None
    report: Optional[EvaluationReport] = None
    #: Shared Monte Carlo acceptance gate; populated by the driver when the
    #: pipeline contains variation-aware passes, read via
    #: :meth:`OptimizationPass.gate`.
    variation_gate: Optional[VariationGate] = None

    @property
    def slack_corners(self) -> Optional[List[str]]:
        return self.config.corner_names_for_slacks()

    def require_tree(self) -> ClockTree:
        if self.tree is None:
            raise RuntimeError(
                "no clock tree in the pipeline context yet; pipelines must start "
                "with a construction pass such as 'initial'"
            )
        return self.tree


class OptimizationPass:
    """One named, registrable pipeline step.

    Subclasses set ``name`` (the registry/pipeline key) and optionally
    ``stage`` -- the Table III row label the driver records right after the
    pass.  ``run`` mutates the context in place.  ``variation_aware`` marks
    the Monte Carlo pipeline variants: the driver builds one shared
    :class:`~repro.core.variation.VariationGate` when any pass in the
    pipeline sets it, and the pass threads the gate into its IVC engine via
    :meth:`gate`.
    """

    name: str = ""
    stage: Optional[str] = None
    variation_aware: bool = False
    #: When set, the pass's IVC loop proposes one candidate per scale and
    #: commits the best gate-approved one via
    #: :meth:`~repro.core.ivc.IvcEngine.run_batched` (scored in a single
    #: batched evaluation when the evaluator allows it).  ``None`` keeps the
    #: classic one-proposal-per-round loop.
    candidate_scales: Optional[Tuple[float, ...]] = None

    def run(self, ctx: PassContext) -> None:
        raise NotImplementedError

    def gate(self, ctx: PassContext) -> Optional[VariationGate]:
        """The acceptance gate this pass should hand to its IVC engine."""
        return ctx.variation_gate if self.variation_aware else None


#: Registered pass factories, keyed by pass name.
PASS_REGISTRY: Dict[str, Callable[[], OptimizationPass]] = {}


def register_pass(factory: Callable[[], OptimizationPass]):
    """Register a pass class (or zero-arg factory) under its ``name``.

    Usable as a class decorator.  Raises on missing or duplicate names so a
    typo cannot silently shadow an existing pass.
    """
    name = getattr(factory, "name", "")
    if not name:
        raise ValueError("an optimization pass needs a non-empty 'name' to register")
    if name in PASS_REGISTRY:
        raise ValueError(f"a pass named {name!r} is already registered")
    PASS_REGISTRY[name] = factory
    return factory


def available_passes() -> List[str]:
    """Sorted names currently in the registry."""
    return sorted(PASS_REGISTRY)


def resolve_pipeline(
    steps: Iterable[Union[str, OptimizationPass]]
) -> List[OptimizationPass]:
    """Materialize a pipeline from registry names and/or ready pass instances."""
    passes: List[OptimizationPass] = []
    for step in steps:
        if isinstance(step, OptimizationPass):
            passes.append(step)
            continue
        factory = PASS_REGISTRY.get(step)
        if factory is None:
            # Registration happens at import time; the baseline synthesis
            # passes live outside repro.core, so pull them in before giving
            # up on the name.
            import repro.baselines  # noqa: F401  (imported for registration)

            factory = PASS_REGISTRY.get(step)
        if factory is None:
            raise KeyError(
                f"unknown optimization pass {step!r}; registered: {available_passes()}"
            )
        passes.append(factory())
    return passes


class PipelineDriver:
    """Runs a resolved pass list over one instance and assembles the result.

    The driver owns the cross-stage machinery that used to live inline in
    ``ContangoFlow.run``: evaluator construction from the
    :class:`~repro.core.config.FlowConfig`, threading the last accepted
    report between passes, emitting one :class:`StageRecord` per labelled
    stage, and sealing the :class:`FlowResult` (final tree/report,
    evaluation counts, cache statistics, wall-clock).
    """

    def __init__(
        self,
        passes: Iterable[Union[str, OptimizationPass]],
        flow_name: str = "contango",
    ) -> None:
        self.passes = resolve_pipeline(passes)
        self.flow_name = flow_name

    # ------------------------------------------------------------------
    def run(
        self,
        instance: ClockNetworkInstance,
        config: FlowConfig,
        tracer: Optional[TracerBase] = None,
    ) -> FlowResult:
        instance.validate()
        active = tracer if tracer is not None else NULL_TRACER
        # Record-level wall-clock field; attribution flows through the tracer.
        start = time.perf_counter()  # repro: lint-ok[untimed-wallclock]
        evaluator = ClockNetworkEvaluator(
            config=EvaluatorConfig(
                engine=config.engine,
                max_segment_length=config.max_segment_length,
                slew_limit=instance.slew_limit,
                solver=config.solver,
            ),
            corners=config.corners,
            capacitance_limit=instance.capacitance_limit,
        )
        evaluator.tracer = active
        result = FlowResult(instance_name=instance.name, flow_name=self.flow_name)
        ctx = PassContext(
            instance=instance,
            config=config,
            evaluator=evaluator,
            result=result,
            start_time=start,
            variation_gate=self._build_gate(config, evaluator),
        )
        with active.span(f"flow:{self.flow_name}") as flow_span:
            for optimization_pass in self.passes:
                with active.span(f"pass:{optimization_pass.name}"):
                    optimization_pass.run(ctx)
                if optimization_pass.stage is not None:
                    self._record_stage(ctx, optimization_pass.stage)
            if ctx.report is None:
                ctx.report = evaluator.evaluate(ctx.require_tree())
            if flow_span is not None:
                flow_span.count("passes", len(self.passes))
                flow_span.count("evaluations", evaluator.run_count)
        result.tree = ctx.tree
        result.final_report = ctx.report
        result.total_evaluations = evaluator.run_count
        result.evaluator_cache = evaluator.cache_stats()
        METRICS.absorb("evaluator", result.evaluator_cache)
        METRICS.count("pipeline.flows")
        if ctx.variation_gate is not None:
            result.variation_gate = ctx.variation_gate.stats()
            METRICS.absorb("variation_gate", result.variation_gate)
        result.runtime_s = time.perf_counter() - start  # repro: lint-ok[untimed-wallclock]
        return result

    def _build_gate(
        self, config: FlowConfig, evaluator: ClockNetworkEvaluator
    ) -> Optional[VariationGate]:
        """One shared p95 gate when the pipeline has variation-aware passes."""
        if not any(p.variation_aware for p in self.passes):
            return None
        if config.engine not in ("elmore", "arnoldi"):
            raise ValueError(
                "variation-aware pipeline passes need an analytical engine "
                "('elmore' or 'arnoldi'): the Monte Carlo gate batches all "
                f"samples through the moment path, got engine={config.engine!r}"
            )
        return VariationGate(
            evaluator,
            config.variation_model or default_variation_model(),
            samples=config.variation_samples,
            seed=config.seed,
            tolerance_ps=config.variation_p95_tolerance_ps,
            skew_limit_ps=config.variation_skew_limit_ps,
        )

    @staticmethod
    def _record_stage(ctx: PassContext, stage: str) -> None:
        tree = ctx.require_tree()
        if ctx.report is None:
            ctx.report = ctx.evaluator.evaluate(tree)
        record = StageRecord.from_report(
            stage,
            tree,
            ctx.report,
            # Cumulative Table III elapsed column, not span attribution.
            elapsed_s=time.perf_counter() - ctx.start_time,  # repro: lint-ok[untimed-wallclock]
        )
        ctx.result.stages.append(record)


# ----------------------------------------------------------------------
# The Contango stages (Figure 1 of the paper) as registered passes
# ----------------------------------------------------------------------
@register_pass
class InitialSynthesisPass(OptimizationPass):
    """INITIAL: tree construction, obstacle repair, buffering, polarity."""

    name = "initial"
    stage = "INITIAL"

    def run(self, ctx: PassContext) -> None:
        ctx.tree = self._build_initial_tree(ctx)
        self._repair_obstacles(ctx)
        ctx.tree = self._insert_buffers(ctx)
        self._correct_polarity(ctx)
        ctx.report = None  # the driver evaluates the fresh network for INITIAL

    # -- construction --------------------------------------------------
    def _build_initial_tree(self, ctx: PassContext) -> ClockTree:
        instance, config = ctx.instance, ctx.config
        wire = instance.wire_library.default
        if config.skew_bound > 0.0:
            return build_bounded_skew_tree(
                instance.sinks,
                instance.source,
                wire,
                skew_bound=config.skew_bound,
                source_resistance=instance.source_resistance,
                topology_method=config.topology_method,
                obstacles=instance.obstacles,
            )
        return build_zero_skew_tree(
            instance.sinks,
            instance.source,
            wire,
            source_resistance=instance.source_resistance,
            topology_method=config.topology_method,
            obstacles=instance.obstacles,
        )

    def _repair_obstacles(self, ctx: PassContext) -> None:
        instance, config = ctx.instance, ctx.config
        if not config.enable_obstacle_avoidance or len(instance.obstacles) == 0:
            return
        analysis = analyze_composites(
            instance.buffer_library, max_parallel=config.composite_max_parallel
        )
        report = repair_obstacle_violations(
            ctx.require_tree(),
            instance.obstacles,
            die=instance.die,
            driver=analysis.preferred_base,
            slew_limit=instance.slew_limit,
        )
        ctx.result.obstacle_detours = report.subtrees_detoured + report.maze_reroutes

    def _buffer_candidates(self, ctx: PassContext) -> List:

        instance, config = ctx.instance, ctx.config
        if config.use_composite_inverters:
            analysis = analyze_composites(
                instance.buffer_library,
                max_parallel=config.composite_max_parallel,
                ladder_steps=config.composite_ladder_steps,
            )
            return analysis.ladder
        # Ablation mode: groups of the largest primitive inverter instead of
        # composites of the small one (the paper's scalability experiment).
        largest = max(instance.buffer_library, key=lambda b: b.input_cap)
        return composite_ladder(largest, 1, steps=config.composite_ladder_steps)

    def _insert_buffers(self, ctx: PassContext) -> ClockTree:
        instance, config = ctx.instance, ctx.config
        sweep = insert_buffers_with_sizing(
            ctx.require_tree(),
            self._buffer_candidates(ctx),
            capacitance_limit=instance.capacitance_limit,
            power_reserve=config.power_reserve,
            slew_limit=instance.slew_limit,
            slew_margin=config.buffering_slew_margin,
            station_spacing=config.station_spacing,
            obstacles=instance.obstacles if len(instance.obstacles) else None,
            die=instance.die,
            max_options=config.max_dp_options,
        )
        ctx.result.chosen_buffer = sweep.chosen.buffer.name if sweep.chosen else None
        return sweep.tree

    def _correct_polarity(self, ctx: PassContext) -> None:

        instance, config = ctx.instance, ctx.config
        tree = ctx.require_tree()
        ctx.result.inverted_sinks = count_inverted_sinks(tree)
        if ctx.result.inverted_sinks == 0:
            return
        smallest = instance.buffer_library.smallest
        stronger = [
            smallest.parallel(count) for count in (2, 4, 8, 16) if smallest.inverting
        ]
        correction = correct_sink_polarity(
            tree,
            smallest,
            strategy=config.polarity_strategy,
            slew_limit=instance.slew_limit,
            stronger_inverters=stronger,
        )
        ctx.result.polarity_inverters_added = correction.inverters_added


@register_pass
class TrunkBufferSizingPass(OptimizationPass):
    """TBSZ: trunk buffer sliding/interleaving + iterative buffer sizing."""

    name = "tbsz"
    stage = "TBSZ"

    def run(self, ctx: PassContext) -> None:
        if not ctx.config.enable_buffer_sizing:
            return
        tree = ctx.require_tree()
        sliding = slide_and_interleave_trunk(
            tree,
            ctx.evaluator,
            baseline=ctx.report,
            objective="clr",
            gate=self.gate(ctx),
            candidate_scales=self.candidate_scales,
        )
        ctx.result.pass_results["trunk_sliding"] = sliding
        sizing = iterative_buffer_sizing(
            tree,
            ctx.evaluator,
            capacitance_limit=ctx.instance.capacitance_limit,
            baseline=sliding.final_report,
            objective="clr",
            levels_after_branch=ctx.config.sizing_levels_after_branch,
            max_iterations=ctx.config.sizing_max_iterations,
            max_consecutive_rejections=ctx.config.sizing_max_rejections,
            gate=self.gate(ctx),
            candidate_scales=self.candidate_scales,
        )
        ctx.result.pass_results["buffer_sizing"] = sizing
        ctx.report = sizing.final_report


@register_pass
class WiresizingPass(OptimizationPass):
    """TWSZ: iterative top-down wiresizing."""

    name = "twsz"
    stage = "TWSZ"

    def run(self, ctx: PassContext) -> None:

        if not ctx.config.enable_wiresizing:
            return
        outcome = top_down_wiresizing(
            ctx.require_tree(),
            ctx.evaluator,
            ctx.instance.wire_library,
            baseline=ctx.report,
            objective="skew",
            corners=ctx.slack_corners,
            max_rounds=ctx.config.wiresizing_max_rounds,
            gate=self.gate(ctx),
            candidate_scales=self.candidate_scales,
        )
        ctx.result.pass_results["wiresizing"] = outcome
        ctx.report = outcome.final_report


@register_pass
class WiresnakingPass(OptimizationPass):
    """TWSN: iterative top-down wiresnaking."""

    name = "twsn"
    stage = "TWSN"

    def run(self, ctx: PassContext) -> None:

        if not ctx.config.enable_wiresnaking:
            return
        outcome = top_down_wiresnaking(
            ctx.require_tree(),
            ctx.evaluator,
            baseline=ctx.report,
            objective="skew",
            corners=ctx.slack_corners,
            unit_length=ctx.config.wiresnaking_unit_length,
            max_rounds=ctx.config.wiresnaking_max_rounds,
            gate=self.gate(ctx),
            candidate_scales=self.candidate_scales,
        )
        ctx.result.pass_results["wiresnaking"] = outcome
        ctx.report = outcome.final_report


@register_pass
class BottomLevelPass(OptimizationPass):
    """BWSN: bottom-level wiresizing/wiresnaking fine-tuning."""

    name = "bwsn"
    stage = "BWSN"

    def run(self, ctx: PassContext) -> None:

        if not ctx.config.enable_bottom_level:
            return
        outcome = bottom_level_fine_tuning(
            ctx.require_tree(),
            ctx.evaluator,
            ctx.instance.wire_library,
            baseline=ctx.report,
            objective="skew",
            corners=ctx.slack_corners,
            unit_length=ctx.config.bottom_unit_length,
            max_rounds=ctx.config.bottom_max_rounds,
            gate=self.gate(ctx),
            candidate_scales=self.candidate_scales,
        )
        ctx.result.pass_results["bottom_level"] = outcome
        ctx.report = outcome.final_report


# ----------------------------------------------------------------------
# Variation-aware pipeline variants (Monte Carlo p95-skew gated IVC)
# ----------------------------------------------------------------------
# Each variant runs the identical optimization, but every IVC round that
# improves the nominal objective is additionally screened by the shared
# VariationGate: rounds that regress the p95 skew of the Monte Carlo
# variation distribution are rolled back.  Select them via
# ``FlowConfig(pipeline=list(VARIATION_PIPELINE))`` or per stage
# (``--pipeline initial,tbsz,twsz_mc,...``).
@register_pass
class VariationAwareTrunkBufferSizingPass(TrunkBufferSizingPass):
    """TBSZ with the Monte Carlo p95-skew acceptance gate."""

    name = "tbsz_mc"
    variation_aware = True


@register_pass
class VariationAwareWiresizingPass(WiresizingPass):
    """TWSZ with the Monte Carlo p95-skew acceptance gate."""

    name = "twsz_mc"
    variation_aware = True


@register_pass
class VariationAwareWiresnakingPass(WiresnakingPass):
    """TWSN with the Monte Carlo p95-skew acceptance gate."""

    name = "twsn_mc"
    variation_aware = True


@register_pass
class VariationAwareBottomLevelPass(BottomLevelPass):
    """BWSN with the Monte Carlo p95-skew acceptance gate."""

    name = "bwsn_mc"
    variation_aware = True


# ----------------------------------------------------------------------
# Batched-candidate pipeline variants (best-of-K IVC rounds)
# ----------------------------------------------------------------------
# Each variant runs the same optimization loop, but every round proposes one
# candidate per aggressiveness scale and commits the best gate-approved one
# (IvcEngine.run_batched).  With EvaluatorConfig.candidate_batching enabled
# the K candidates are scored in a single numpy evaluation along the batch
# axis; with it disabled they fall back to serial scoring, so the variants
# double as the A/B switch for the batched evaluator path.  Select them via
# ``FlowConfig(pipeline=list(BATCHED_PIPELINE))`` or per stage
# (``--pipeline initial,tbsz,twsz_k,...``).
_BATCH_SCALES: Tuple[float, ...] = (1.0, 0.5, 0.25)


@register_pass
class BatchedTrunkBufferSizingPass(TrunkBufferSizingPass):
    """TBSZ with best-of-K batched candidate rounds."""

    name = "tbsz_k"
    candidate_scales = _BATCH_SCALES


@register_pass
class BatchedWiresizingPass(WiresizingPass):
    """TWSZ with best-of-K batched candidate rounds."""

    name = "twsz_k"
    candidate_scales = _BATCH_SCALES


@register_pass
class BatchedWiresnakingPass(WiresnakingPass):
    """TWSN with best-of-K batched candidate rounds."""

    name = "twsn_k"
    candidate_scales = _BATCH_SCALES


@register_pass
class BatchedBottomLevelPass(BottomLevelPass):
    """BWSN with best-of-K batched candidate rounds."""

    name = "bwsn_k"
    candidate_scales = _BATCH_SCALES
