"""Configuration of the Contango synthesis flow."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.analysis.corners import Corner, ispd09_corners
from repro.analysis.spice import TransientSolverConfig
from repro.analysis.variation import VariationModel

__all__ = ["DEFAULT_PIPELINE", "VARIATION_PIPELINE", "BATCHED_PIPELINE", "FlowConfig"]

#: The paper's full optimization sequence (Figure 1), as pass-registry names.
DEFAULT_PIPELINE = ("initial", "tbsz", "twsz", "twsn", "bwsn")

#: The variation-aware pipeline variant: the same sequence with every IVC
#: round of the optimization passes additionally screened by the Monte Carlo
#: p95-skew gate (see :mod:`repro.core.variation`).
VARIATION_PIPELINE = ("initial", "tbsz_mc", "twsz_mc", "twsn_mc", "bwsn_mc")

#: The batched-candidate pipeline variant: the same sequence with every IVC
#: round proposing best-of-K scaled candidates, scored in one batched
#: evaluation when ``EvaluatorConfig.candidate_batching`` allows (see
#: :meth:`repro.core.ivc.IvcEngine.run_batched`).
BATCHED_PIPELINE = ("initial", "tbsz_k", "twsz_k", "twsn_k", "bwsn_k")


@dataclass
class FlowConfig:
    """All knobs of :class:`repro.core.flow.ContangoFlow`.

    The defaults reproduce the paper's methodology: transient (SPICE-style)
    evaluation at the two ISPD'09 supply corners, composite small inverters
    chosen by dominance analysis, a 10% capacitance reserve at initial buffer
    insertion, and the full optimization sequence INITIAL -> TBSZ -> TWSZ ->
    TWSN -> BWSN.

    ``pipeline`` selects which registered optimization passes run, in order
    (see :mod:`repro.core.pipeline`); ``None`` means the paper's
    :data:`DEFAULT_PIPELINE`.  The ``enable_*`` switches additionally gate
    individual stages without dropping their Table III rows -- handy for the
    ablation benches, which compare stage tables of equal shape.
    """

    # Evaluation
    engine: str = "spice"
    corners: List[Corner] = field(default_factory=ispd09_corners)
    max_segment_length: float = 100.0
    solver: TransientSolverConfig = field(default_factory=TransientSolverConfig)

    # Initial tree construction
    topology_method: str = "bisection"
    skew_bound: float = 0.0

    # Buffer insertion
    station_spacing: float = 250.0
    power_reserve: float = 0.10
    buffering_slew_margin: float = 0.70
    composite_max_parallel: int = 8
    composite_ladder_steps: int = 4
    use_composite_inverters: bool = True
    max_dp_options: int = 32

    # Polarity correction
    polarity_strategy: str = "subtree"

    # Optimization passes
    #: Pass-registry names to run, in order; None = DEFAULT_PIPELINE.
    pipeline: Optional[List[str]] = None
    enable_obstacle_avoidance: bool = True
    enable_buffer_sizing: bool = True
    enable_wiresizing: bool = True
    enable_wiresnaking: bool = True
    enable_bottom_level: bool = True
    multicorner_slacks: bool = False

    wiresizing_max_rounds: int = 15
    wiresnaking_unit_length: float = 20.0
    wiresnaking_max_rounds: int = 15
    bottom_unit_length: float = 5.0
    bottom_max_rounds: int = 10
    sizing_levels_after_branch: int = 4
    sizing_max_iterations: int = 8
    #: Consecutive rejected sizing iterations tolerated before the pass stops
    #: (each rejection retries with the growth step halved); 1 reproduces the
    #: historical stop-on-first-rejection behavior.
    sizing_max_rejections: int = 3

    # Reproducibility
    #: Base seed of every stochastic component (Monte Carlo variation
    #: sampling, the p95 acceptance gate, benchmark harnesses).  All
    #: generators are derived from it via :mod:`repro.seeding`, so two runs
    #: with equal seeds are bit-identical and ``None`` falls back to the
    #: library default rather than nondeterminism.
    seed: Optional[int] = None

    # Monte Carlo variation (the `*_mc` pipeline variants and `repro mc`)
    #: Variation model used by the p95 acceptance gate; ``None`` selects
    #: :func:`repro.analysis.variation.default_variation_model`.
    variation_model: Optional[VariationModel] = None
    #: Scenario count per gate check (kept modest: one check costs one
    #: batched yield evaluation).
    variation_samples: int = 128
    #: Allowed p95-skew increase (ps) before the gate rejects a round.
    variation_p95_tolerance_ps: float = 0.0
    #: Skew limit (ps) used for yield reporting by the gate and `repro mc`.
    variation_skew_limit_ps: float = 7.5

    def pipeline_names(self) -> List[str]:
        """The pass names this flow runs, resolving the default pipeline."""
        if self.pipeline is None:
            return list(DEFAULT_PIPELINE)
        return list(self.pipeline)

    def corner_names_for_slacks(self) -> Optional[List[str]]:
        """Corners used for slack computation (None = nominal corner only)."""
        if self.multicorner_slacks:
            return [corner.name for corner in self.corners]
        return None
