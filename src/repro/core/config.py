"""Configuration of the Contango synthesis flow."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.analysis.corners import Corner, ispd09_corners
from repro.analysis.spice import TransientSolverConfig

__all__ = ["FlowConfig"]


@dataclass
class FlowConfig:
    """All knobs of :class:`repro.core.flow.ContangoFlow`.

    The defaults reproduce the paper's methodology: transient (SPICE-style)
    evaluation at the two ISPD'09 supply corners, composite small inverters
    chosen by dominance analysis, a 10% capacitance reserve at initial buffer
    insertion, and the full optimization sequence INITIAL -> TBSZ -> TWSZ ->
    TWSN -> BWSN.  The ``enable_*`` switches exist for the ablation benches.
    """

    # Evaluation
    engine: str = "spice"
    corners: List[Corner] = field(default_factory=ispd09_corners)
    max_segment_length: float = 100.0
    solver: TransientSolverConfig = field(default_factory=TransientSolverConfig)

    # Initial tree construction
    topology_method: str = "bisection"
    skew_bound: float = 0.0

    # Buffer insertion
    station_spacing: float = 250.0
    power_reserve: float = 0.10
    buffering_slew_margin: float = 0.70
    composite_max_parallel: int = 8
    composite_ladder_steps: int = 4
    use_composite_inverters: bool = True
    max_dp_options: int = 32

    # Polarity correction
    polarity_strategy: str = "subtree"

    # Optimization passes
    enable_obstacle_avoidance: bool = True
    enable_buffer_sizing: bool = True
    enable_wiresizing: bool = True
    enable_wiresnaking: bool = True
    enable_bottom_level: bool = True
    multicorner_slacks: bool = False

    wiresizing_max_rounds: int = 15
    wiresnaking_unit_length: float = 20.0
    wiresnaking_max_rounds: int = 15
    bottom_unit_length: float = 5.0
    bottom_max_rounds: int = 10
    sizing_levels_after_branch: int = 4
    sizing_max_iterations: int = 8

    def corner_names_for_slacks(self) -> Optional[List[str]]:
        """Corners used for slack computation (None = nominal corner only)."""
        if self.multicorner_slacks:
            return [corner.name for corner in self.corners]
        return None
