"""Iterative top-down wiresnaking (Section IV-F of the paper).

Wiresnaking adds serpentine wirelength to edges whose downstream sinks have
slow-down slack.  It is finer-grained than wiresizing -- any amount of extra
delay can be dialled in by choosing the snake length -- and is therefore run
*after* wiresizing, when the remaining skew is small.  The snake length is
quantized to multiples of the calibration unit ``lwn``; the worst-case delay
of one unit (``Twn``) is measured with a single evaluation, and smaller units
give a more accurate (but slower-converging) pass, exactly as discussed in
the paper.
"""

from __future__ import annotations

from collections import deque
from typing import Optional, Sequence

from repro.analysis.evaluator import ClockNetworkEvaluator, EvaluationReport
from repro.core.slack import annotate_tree_slacks
from repro.core.tuning import (
    PassResult,
    calibrate_snake_model,
    objective_value,
    stage_slew_headroom,
)
from repro.cts.tree import ClockTree

__all__ = ["top_down_wiresnaking"]


def top_down_wiresnaking(
    tree: ClockTree,
    evaluator: ClockNetworkEvaluator,
    baseline: Optional[EvaluationReport] = None,
    objective: str = "skew",
    corners: Optional[Sequence[str]] = None,
    unit_length: float = 20.0,
    max_units_per_edge: int = 50,
    max_rounds: int = 20,
    safety: float = 0.9,
) -> PassResult:
    """Run iterative top-down wiresnaking on ``tree`` in place.

    ``unit_length`` is the paper's ``lwn`` parameter (um of snake per unit);
    ``max_units_per_edge`` caps how much snake a single edge may receive per
    round, which keeps each round inside the linear-model trust region.
    """
    if unit_length <= 0.0:
        raise ValueError("unit_length must be positive")
    evals_before = evaluator.run_count
    report = baseline if baseline is not None else evaluator.evaluate(tree)
    initial_summary = report.summary()
    result = PassResult(
        name="top_down_wiresnaking",
        improved=False,
        rounds=0,
        edges_changed=0,
        initial=initial_summary,
        final=initial_summary,
        evaluations_used=0,
    )

    model = calibrate_snake_model(tree, evaluator, report, unit_length)
    if model is None:
        result.notes.append("snake impact model could not be calibrated")
        result.final_report = report
        result.evaluations_used = evaluator.run_count - evals_before
        return result

    best_objective = objective_value(report, objective)
    rejections = 0
    for _ in range(max_rounds):
        annotation = annotate_tree_slacks(tree, report, corners=corners)
        headroom = stage_slew_headroom(tree, report)
        model.refresh(tree)
        snapshot = tree.clone()
        changed = _snake_round(
            tree,
            annotation.edge_slow,
            headroom,
            model,
            unit_length,
            max_units_per_edge,
            safety,
        )
        if changed == 0:
            result.notes.append("no edge had a full snaking unit of slack left")
            break
        candidate_report = evaluator.evaluate(tree)
        candidate_objective = objective_value(candidate_report, objective)
        rejected_reason = None
        if candidate_report.has_slew_violation:
            rejected_reason = "slew violation"
        elif not candidate_report.within_capacitance_limit:
            rejected_reason = "capacitance limit exceeded"
        elif candidate_objective >= best_objective:
            rejected_reason = "no improvement"
        if rejected_reason is not None:
            # Roll back and retry with a smaller move budget: a rejected batch
            # usually means the linear model overreached, not that no
            # improving move exists (the paper simply moves on; retrying at
            # lower aggressiveness recovers part of the head-room instead).
            tree.copy_state_from(snapshot)
            result.notes.append("round rejected: " + rejected_reason)
            rejections += 1
            safety *= 0.5
            if rejections >= 3:
                break
            continue
        rejections = 0
        report = candidate_report
        best_objective = candidate_objective
        result.rounds += 1
        result.edges_changed += changed
        result.improved = True

    result.final = report.summary()
    result.final_report = report
    result.evaluations_used = evaluator.run_count - evals_before
    return result


def _snake_round(
    tree: ClockTree,
    edge_slow_slack,
    slew_headroom,
    model,
    unit_length: float,
    max_units_per_edge: int,
    safety: float,
) -> int:
    """One top-down snaking sweep; returns the number of edges snaked.

    The snake on each edge is bounded both by the remaining slow-down slack on
    the path (skew safety) and by the slew headroom of the edge's stage (a
    snaked wire transitions more slowly at its taps).
    """
    changed = 0
    queue = deque((child, 0.0) for child in tree.root.children)
    while queue:
        node_id, consumed = queue.popleft()
        node = tree.node(node_id)
        slack = edge_slow_slack.get(node_id)
        if slack is not None and node.parent is not None:
            budget = min(safety * slack - consumed, slew_headroom.max_delay(node_id))
            max_length = model.length_for_delay(tree, node_id, budget)
            units = min(int(max_length // unit_length), max_units_per_edge)
            if units > 0:
                extra = units * unit_length
                predicted = model.delay_for_length(tree, node_id, extra)
                tree.add_snake(node_id, extra)
                slew_headroom.consume_delay(node_id, predicted)
                consumed += predicted
                changed += 1
        for child in node.children:
            queue.append((child, consumed))
    return changed
