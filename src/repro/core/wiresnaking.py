"""Iterative top-down wiresnaking (Section IV-F of the paper).

Wiresnaking adds serpentine wirelength to edges whose downstream sinks have
slow-down slack.  It is finer-grained than wiresizing -- any amount of extra
delay can be dialled in by choosing the snake length -- and is therefore run
*after* wiresizing, when the remaining skew is small.  The snake length is
quantized to multiples of the calibration unit ``lwn``; the worst-case delay
of one unit (``Twn``) is measured with a single evaluation, and smaller units
give a more accurate (but slower-converging) pass, exactly as discussed in
the paper.
"""

from __future__ import annotations

from collections import deque
from typing import Optional, Sequence

from repro.analysis.evaluator import ClockNetworkEvaluator, EvaluationReport
from repro.core.ivc import IvcEngine, IvcGate, IvcState
from repro.core.slack import annotate_tree_slacks
from repro.core.tuning import (
    PassResult,
    calibrate_snake_model,
    stage_slew_headroom,
)
from repro.cts.tree import ClockTree

__all__ = ["top_down_wiresnaking"]


def top_down_wiresnaking(
    tree: ClockTree,
    evaluator: ClockNetworkEvaluator,
    baseline: Optional[EvaluationReport] = None,
    objective: str = "skew",
    corners: Optional[Sequence[str]] = None,
    unit_length: float = 20.0,
    max_units_per_edge: int = 50,
    max_rounds: int = 20,
    safety: float = 0.9,
    gate: Optional[IvcGate] = None,
    candidate_scales: Optional[Sequence[float]] = None,
) -> PassResult:
    """Run iterative top-down wiresnaking on ``tree`` in place.

    ``unit_length`` is the paper's ``lwn`` parameter (um of snake per unit);
    ``max_units_per_edge`` caps how much snake a single edge may receive per
    round, which keeps each round inside the linear-model trust region.
    ``gate`` is an optional IVC acceptance gate (see
    :class:`repro.core.variation.VariationGate`).  ``candidate_scales``
    switches the loop to batched best-of-K rounds (one candidate per scale,
    see :meth:`~repro.core.ivc.IvcEngine.run_batched`); ``None`` keeps the
    classic one-proposal-per-round loop.
    """
    if unit_length <= 0.0:
        raise ValueError("unit_length must be positive")
    engine = IvcEngine(
        "top_down_wiresnaking",
        tree,
        evaluator,
        objective=objective,
        baseline=baseline,
        gate=gate,
    )
    model = calibrate_snake_model(tree, evaluator, engine.report, unit_length)
    if model is None:
        return engine.abort("snake impact model could not be calibrated")

    def propose(state: IvcState) -> int:
        annotation = annotate_tree_slacks(tree, state.report, corners=corners)
        headroom = stage_slew_headroom(tree, state.report)
        model.refresh(tree)
        return _snake_round(
            tree,
            annotation.edge_slow,
            headroom,
            model,
            unit_length,
            max_units_per_edge,
            safety * state.aggressiveness,
        )

    if candidate_scales is not None:
        return engine.run_batched(
            propose,
            max_rounds=max_rounds,
            candidate_scales=tuple(candidate_scales),
            empty_note="no edge had a full snaking unit of slack left",
        )
    return engine.run(
        propose,
        max_rounds=max_rounds,
        empty_note="no edge had a full snaking unit of slack left",
    )


def _snake_round(
    tree: ClockTree,
    edge_slow_slack,
    slew_headroom,
    model,
    unit_length: float,
    max_units_per_edge: int,
    safety: float,
) -> int:
    """One top-down snaking sweep; returns the number of edges snaked.

    The snake on each edge is bounded both by the remaining slow-down slack on
    the path (skew safety) and by the slew headroom of the edge's stage (a
    snaked wire transitions more slowly at its taps).
    """
    changed = 0
    queue = deque((child, 0.0) for child in tree.root.children)
    while queue:
        node_id, consumed = queue.popleft()
        node = tree.node(node_id)
        slack = edge_slow_slack.get(node_id)
        if slack is not None and node.parent is not None:
            budget = min(safety * slack - consumed, slew_headroom.max_delay(node_id))
            max_length = model.length_for_delay(tree, node_id, budget)
            units = min(int(max_length // unit_length), max_units_per_edge)
            if units > 0:
                extra = units * unit_length
                predicted = model.delay_for_length(tree, node_id, extra)
                tree.add_snake(node_id, extra)
                slew_headroom.consume_delay(node_id, predicted)
                consumed += predicted
                changed += 1
        for child in node.children:
            queue.append((child, consumed))
    return changed
