"""Iterative top-down wiresizing (Section IV-E, Algorithm 1 of the paper).

Wiresizing reduces skew by *slowing down* the fast parts of the tree: an edge
whose downstream sinks all have slow-down slack can be switched to a narrower
(higher-resistance) wire without increasing skew.  The pass works top-down so
that a single edit high in the tree retires the slack of a whole cluster of
fast sinks with the smallest possible number of modifications; the running
``RSlack`` budget carried down each path guarantees that slack is never spent
twice on the same root-to-sink path (Algorithm 1).

The effect of downsizing is predicted with the calibrated linear model
``delta_delay ~= Tws * length`` (one evaluation measures ``Tws``); the
accept/rollback discipline around each round is the shared
:class:`repro.core.ivc.IvcEngine` (the IVC step).
"""

from __future__ import annotations

from collections import deque
from typing import Optional, Sequence

from repro.analysis.evaluator import ClockNetworkEvaluator, EvaluationReport
from repro.core.ivc import IvcEngine, IvcGate, IvcState
from repro.core.slack import annotate_tree_slacks
from repro.core.tuning import (
    PassResult,
    calibrate_downsize_model,
    stage_slew_headroom,
)
from repro.cts.tree import ClockTree
from repro.cts.wirelib import WireLibrary

__all__ = ["top_down_wiresizing"]


def top_down_wiresizing(
    tree: ClockTree,
    evaluator: ClockNetworkEvaluator,
    wirelib: WireLibrary,
    baseline: Optional[EvaluationReport] = None,
    objective: str = "skew",
    corners: Optional[Sequence[str]] = None,
    max_rounds: int = 20,
    safety: float = 0.9,
    min_edge_length: float = 10.0,
    gate: Optional[IvcGate] = None,
    candidate_scales: Optional[Sequence[float]] = None,
) -> PassResult:
    """Run iterative top-down wiresizing on ``tree`` in place.

    Parameters
    ----------
    baseline:
        Evaluation of the incoming tree; re-evaluated here when omitted.
    objective:
        ``"skew"`` (default), ``"clr"`` or ``"combined"`` -- the metric that
        must improve for a round to be accepted.
    corners:
        Corner names used for slack computation; default is the nominal
        (fast) corner only, matching the paper's nominal-skew phase.
    safety:
        Fraction of the available slack the linear model is allowed to spend,
        guarding against model error.
    gate:
        Optional IVC acceptance gate (e.g. the Monte Carlo p95-skew check of
        :class:`repro.core.variation.VariationGate`).
    candidate_scales:
        When given, each round proposes one candidate per scale (applied to
        the state's aggressiveness) and commits the best gate-approved one
        via :meth:`~repro.core.ivc.IvcEngine.run_batched`; ``None`` keeps the
        classic one-proposal-per-round loop.
    """
    engine = IvcEngine(
        "top_down_wiresizing",
        tree,
        evaluator,
        objective=objective,
        baseline=baseline,
        gate=gate,
    )
    model = calibrate_downsize_model(tree, evaluator, wirelib, engine.report)
    if model is None:
        return engine.abort("no downsizable edges to calibrate the impact model on")

    def propose(state: IvcState) -> int:
        annotation = annotate_tree_slacks(tree, state.report, corners=corners)
        headroom = stage_slew_headroom(tree, state.report)
        model.refresh(tree)
        return _downsize_round(
            tree,
            wirelib,
            annotation.edge_slow,
            headroom,
            model,
            safety * state.aggressiveness,
            min_edge_length,
        )

    if candidate_scales is not None:
        return engine.run_batched(
            propose,
            max_rounds=max_rounds,
            candidate_scales=tuple(candidate_scales),
            empty_note="no edge had enough slack to absorb a downsizing",
        )
    return engine.run(
        propose,
        max_rounds=max_rounds,
        empty_note="no edge had enough slack to absorb a downsizing",
    )


def _downsize_round(
    tree: ClockTree,
    wirelib: WireLibrary,
    edge_slow_slack,
    slew_headroom,
    model,
    safety: float,
    min_edge_length: float,
) -> int:
    """One top-down sweep of Algorithm 1; returns the number of edges downsized.

    An edge is only downsized when (a) its slow-down slack minus the slack
    already consumed on the path covers the predicted delay increase, and
    (b) the stage containing the edge still has slew headroom for the slower
    transition.  The headroom is *consumed* per accepted move, so several
    edges of the same stage cannot jointly push a tap past the slew limit.
    """
    changed = 0
    queue = deque((child, 0.0) for child in tree.root.children)
    while queue:
        node_id, consumed = queue.popleft()
        node = tree.node(node_id)
        slack = edge_slow_slack.get(node_id)
        length = node.edge_length()
        if (
            slack is not None
            and length >= min_edge_length
            and node.wire_type is not None
            and wirelib.can_downsize(node.wire_type)
        ):
            predicted = model.predicted_delay(tree, wirelib, node_id)
            if (
                predicted > 0.0
                and safety * slack - consumed > predicted
                and slew_headroom.allows_delay(node_id, predicted)
            ):
                tree.set_wire_type(node_id, wirelib.narrower(node.wire_type))
                slew_headroom.consume_delay(node_id, predicted)
                consumed += predicted
                changed += 1
        for child in node.children:
            queue.append((child, consumed))
    return changed
