"""Composite inverter/buffer analysis (Section IV-B, Table I of the paper).

Technology libraries for clock networks typically contain a few discrete
inverter sizes.  Contango widens the design space by considering *composite*
inverters -- several identical inverters connected in parallel -- and keeps
only the non-dominated configurations (lower input cap, output cap and output
resistance).  For the ISPD'09 library (one large and one small inverter),
eight parallel small inverters dominate one large inverter, which is why the
paper uses 8x/16x/24x small-inverter batches throughout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.cts.bufferlib import BufferLibrary, BufferType

__all__ = [
    "CompositeAnalysis",
    "enumerate_composites",
    "non_dominated_composites",
    "smallest_dominating_count",
    "composite_ladder",
    "analyze_composites",
    "table1_rows",
]


@dataclass
class CompositeAnalysis:
    """Outcome of the composite-buffer analysis for a library."""

    composites: List[BufferType]
    non_dominated: List[BufferType]
    preferred_base: BufferType
    ladder: List[BufferType]


def enumerate_composites(
    library: BufferLibrary, max_parallel: int = 8
) -> List[BufferType]:
    """All parallel compositions of every primitive up to ``max_parallel`` copies."""
    if max_parallel < 1:
        raise ValueError("max_parallel must be at least 1")
    composites: List[BufferType] = []
    for primitive in library:
        for count in range(1, max_parallel + 1):
            composites.append(primitive.parallel(count))
    return composites


def non_dominated_composites(composites: Sequence[BufferType]) -> List[BufferType]:
    """Filter a composite list down to its Pareto-optimal members.

    A composite is kept when no other composite is at least as good on input
    capacitance, output capacitance and output resistance simultaneously.
    """
    kept: List[BufferType] = []
    for candidate in composites:
        if any(other.dominates(candidate) for other in composites if other is not candidate):
            continue
        kept.append(candidate)
    return kept


def smallest_dominating_count(
    small: BufferType, large: BufferType, max_parallel: int = 64
) -> Optional[int]:
    """Smallest number of parallel ``small`` inverters that dominates ``large``.

    Returns None when no count up to ``max_parallel`` dominates.  For the
    ISPD'09 Table I values the answer is 8, matching the paper.
    """
    for count in range(1, max_parallel + 1):
        if small.parallel(count).dominates(large):
            return count
    return None


def composite_ladder(
    base: BufferType, base_count: int, steps: int = 4
) -> List[BufferType]:
    """The batches actually swept during buffer insertion: k, 2k, 3k, ... copies."""
    if base_count < 1 or steps < 1:
        raise ValueError("base_count and steps must be positive")
    return [base.parallel(base_count * (i + 1)) for i in range(steps)]


def analyze_composites(
    library: BufferLibrary, max_parallel: int = 8, ladder_steps: int = 4
) -> CompositeAnalysis:
    """Run the full composite analysis used by the Contango flow.

    The preferred base composite is the cheapest (by total capacitance)
    composite that is at least as strong as the strongest primitive in the
    library -- for the ISPD'09 library this is the 8x small inverter, which
    dominates the large inverter (smaller input cap, output cap and output
    resistance).  If no composition beats the strongest primitive, that
    primitive itself is used.  The returned ladder multiplies the chosen base
    in integer batches, mirroring the 8x/16x/24x small-inverter batches of
    the paper.
    """
    composites = enumerate_composites(library, max_parallel=max_parallel)
    frontier = non_dominated_composites(composites)
    strongest_primitive = library.strongest
    challengers = [comp for comp in composites if comp.dominates(strongest_primitive)]
    if challengers:
        preferred = min(challengers, key=lambda b: b.total_cap)
    else:
        preferred = strongest_primitive
    base = library.by_name(preferred.base_name)
    ladder = composite_ladder(base, preferred.parallel_count, steps=ladder_steps)
    return CompositeAnalysis(
        composites=composites,
        non_dominated=frontier,
        preferred_base=preferred,
        ladder=ladder,
    )


def table1_rows(library: BufferLibrary) -> List[Dict[str, float]]:
    """Reproduce the rows of Table I for a two-inverter ISPD'09-style library.

    Rows: the large inverter followed by 1x, 2x, 4x and 8x parallel
    compositions of the small inverter, each with input capacitance, output
    capacitance and output resistance.
    """
    large = max(library, key=lambda b: b.input_cap)
    small = min(library, key=lambda b: b.input_cap)
    rows: List[Dict[str, float]] = []
    for label, buffer in [("1X Large", large)] + [
        (f"{count}X Small", small.parallel(count)) for count in (1, 2, 4, 8)
    ]:
        rows.append(
            {
                "type": label,
                "input_cap_fF": round(buffer.input_cap, 3),
                "output_cap_fF": round(buffer.output_cap, 3),
                "output_res_ohm": round(buffer.output_res, 3),
            }
        )
    return rows
