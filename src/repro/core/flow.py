"""The Contango clock-network synthesis flow (Figure 1 of the paper).

The flow strings together every piece of the library in the order the paper
prescribes, moving from large-range/low-accuracy optimizations to
small-range/high-accuracy ones:

1. **INITIAL** -- zero-skew DME tree, obstacle-violation repair, composite
   inverter analysis, fast buffer insertion with the strongest composite that
   fits 90% of the capacitance budget, and minimal sink-polarity correction.
2. **TBSZ** -- trunk buffer sliding/interleaving followed by iterative buffer
   sizing with capacitance borrowing (targets CLR; may temporarily increase
   skew, exactly as in Table III).
3. **TWSZ** -- iterative top-down wiresizing (targets skew).
4. **TWSN** -- iterative top-down wiresnaking (targets skew).
5. **BWSN** -- bottom-level wiresizing/wiresnaking fine-tuning (targets skew,
   also nudges CLR).

Since the pass-pipeline refactor the sequence is *data*, not code: each step
is an :class:`~repro.core.pipeline.OptimizationPass` resolved by name from
the pass registry, and :class:`ContangoFlow` merely hands the configured
pass list (``FlowConfig.pipeline``, defaulting to the paper's sequence) to
the :class:`~repro.core.pipeline.PipelineDriver`.  The driver re-evaluates
the network after every labelled stage (a CNE step) and records the metrics,
which is how Table III of the paper is regenerated; every individual
optimization performs its Improvement- & Violation-Checking through the
shared :mod:`repro.core.ivc` engine and rolls back rejected rounds, so the
flow is monotone in its primary objectives.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import FlowConfig
from repro.core.pipeline import PipelineDriver
from repro.core.report import FlowResult
from repro.cts.spec import ClockNetworkInstance
from repro.obs import TracerBase

__all__ = ["ContangoFlow"]


class ContangoFlow:
    """End-to-end Contango synthesis for a :class:`ClockNetworkInstance`."""

    STAGE_INITIAL = "INITIAL"
    STAGE_TBSZ = "TBSZ"
    STAGE_TWSZ = "TWSZ"
    STAGE_TWSN = "TWSN"
    STAGE_BWSN = "BWSN"

    def __init__(self, config: Optional[FlowConfig] = None) -> None:
        self.config = config or FlowConfig()

    def run(
        self,
        instance: ClockNetworkInstance,
        tracer: Optional[TracerBase] = None,
    ) -> FlowResult:
        """Synthesize and optimize the clock network for ``instance``."""
        driver = PipelineDriver(self.config.pipeline_names(), flow_name="contango")
        return driver.run(instance, self.config, tracer=tracer)
