"""The Contango clock-network synthesis flow (Figure 1 of the paper).

The flow strings together every piece of the library in the order the paper
prescribes, moving from large-range/low-accuracy optimizations to
small-range/high-accuracy ones:

1. **INITIAL** -- zero-skew DME tree, obstacle-violation repair, composite
   inverter analysis, fast buffer insertion with the strongest composite that
   fits 90% of the capacitance budget, and minimal sink-polarity correction.
2. **TBSZ** -- trunk buffer sliding/interleaving followed by iterative buffer
   sizing with capacitance borrowing (targets CLR; may temporarily increase
   skew, exactly as in Table III).
3. **TWSZ** -- iterative top-down wiresizing (targets skew).
4. **TWSN** -- iterative top-down wiresnaking (targets skew).
5. **BWSN** -- bottom-level wiresizing/wiresnaking fine-tuning (targets skew,
   also nudges CLR).

After every stage the network is re-evaluated (a CNE step) and the metrics are
recorded, which is how Table III of the paper is regenerated.  Every
individual optimization performs its own Improvement- & Violation-Checking and
rolls back rejected rounds, so the flow is monotone in its primary objectives.
"""

from __future__ import annotations

import time
from typing import List, Optional

from repro.analysis.evaluator import (
    ClockNetworkEvaluator,
    EvaluationReport,
    EvaluatorConfig,
)
from repro.buffering.fast_buffering import insert_buffers_with_sizing
from repro.core.bottom_level import bottom_level_fine_tuning
from repro.core.buffer_sizing import iterative_buffer_sizing
from repro.core.buffer_sliding import slide_and_interleave_trunk
from repro.core.composite import analyze_composites, composite_ladder
from repro.core.config import FlowConfig
from repro.core.polarity import correct_sink_polarity, count_inverted_sinks
from repro.core.report import FlowResult, StageRecord
from repro.core.wiresizing import top_down_wiresizing
from repro.core.wiresnaking import top_down_wiresnaking
from repro.cts.bst import build_bounded_skew_tree
from repro.cts.dme import build_zero_skew_tree
from repro.cts.obstacle_avoid import repair_obstacle_violations
from repro.cts.spec import ClockNetworkInstance
from repro.cts.tree import ClockTree

__all__ = ["ContangoFlow"]


class ContangoFlow:
    """End-to-end Contango synthesis for a :class:`ClockNetworkInstance`."""

    STAGE_INITIAL = "INITIAL"
    STAGE_TBSZ = "TBSZ"
    STAGE_TWSZ = "TWSZ"
    STAGE_TWSN = "TWSN"
    STAGE_BWSN = "BWSN"

    def __init__(self, config: Optional[FlowConfig] = None) -> None:
        self.config = config or FlowConfig()

    # ------------------------------------------------------------------
    def run(self, instance: ClockNetworkInstance) -> FlowResult:
        """Synthesize and optimize the clock network for ``instance``."""
        instance.validate()
        config = self.config
        start = time.perf_counter()

        evaluator = ClockNetworkEvaluator(
            config=EvaluatorConfig(
                engine=config.engine,
                max_segment_length=config.max_segment_length,
                slew_limit=instance.slew_limit,
                solver=config.solver,
            ),
            corners=config.corners,
            capacitance_limit=instance.capacitance_limit,
        )
        slack_corners = config.corner_names_for_slacks()

        result = FlowResult(
            instance_name=instance.name,
            flow_name="contango",
            tree=None,  # type: ignore[arg-type] -- assigned below
            final_report=None,  # type: ignore[arg-type]
        )

        tree = self._build_initial_tree(instance)
        self._repair_obstacles(instance, tree, result)
        tree = self._insert_buffers(instance, tree, result)
        self._correct_polarity(instance, tree, result)
        # Each pass hands its last accepted report to the next pass (and to
        # the stage record) as the baseline, so an unchanged tree is never
        # re-evaluated; together with the evaluator's stage cache this makes
        # every candidate move cost only its dirty stages.
        report = self._record_stage(self.STAGE_INITIAL, tree, evaluator, result, start)

        if config.enable_buffer_sizing:
            sliding = slide_and_interleave_trunk(
                tree, evaluator, baseline=report, objective="clr"
            )
            result.pass_results["trunk_sliding"] = sliding
            sizing = iterative_buffer_sizing(
                tree,
                evaluator,
                capacitance_limit=instance.capacitance_limit,
                baseline=sliding.final_report,
                objective="clr",
                levels_after_branch=config.sizing_levels_after_branch,
                max_iterations=config.sizing_max_iterations,
            )
            result.pass_results["buffer_sizing"] = sizing
            report = sizing.final_report
        report = self._record_stage(
            self.STAGE_TBSZ, tree, evaluator, result, start, baseline=report
        )

        if config.enable_wiresizing:
            wiresizing = top_down_wiresizing(
                tree,
                evaluator,
                instance.wire_library,
                baseline=report,
                objective="skew",
                corners=slack_corners,
                max_rounds=config.wiresizing_max_rounds,
            )
            result.pass_results["wiresizing"] = wiresizing
            report = wiresizing.final_report
        report = self._record_stage(
            self.STAGE_TWSZ, tree, evaluator, result, start, baseline=report
        )

        if config.enable_wiresnaking:
            wiresnaking = top_down_wiresnaking(
                tree,
                evaluator,
                baseline=report,
                objective="skew",
                corners=slack_corners,
                unit_length=config.wiresnaking_unit_length,
                max_rounds=config.wiresnaking_max_rounds,
            )
            result.pass_results["wiresnaking"] = wiresnaking
            report = wiresnaking.final_report
        report = self._record_stage(
            self.STAGE_TWSN, tree, evaluator, result, start, baseline=report
        )

        if config.enable_bottom_level:
            bottom = bottom_level_fine_tuning(
                tree,
                evaluator,
                instance.wire_library,
                baseline=report,
                objective="skew",
                corners=slack_corners,
                unit_length=config.bottom_unit_length,
                max_rounds=config.bottom_max_rounds,
            )
            result.pass_results["bottom_level"] = bottom
            report = bottom.final_report
        report = self._record_stage(
            self.STAGE_BWSN, tree, evaluator, result, start, baseline=report
        )

        result.tree = tree
        result.final_report = report
        result.total_evaluations = evaluator.run_count
        result.evaluator_cache = evaluator.cache_stats()
        result.runtime_s = time.perf_counter() - start
        return result

    # ------------------------------------------------------------------
    # Individual flow steps
    # ------------------------------------------------------------------
    def _build_initial_tree(self, instance: ClockNetworkInstance) -> ClockTree:
        wire = instance.wire_library.default
        if self.config.skew_bound > 0.0:
            return build_bounded_skew_tree(
                instance.sinks,
                instance.source,
                wire,
                skew_bound=self.config.skew_bound,
                source_resistance=instance.source_resistance,
                topology_method=self.config.topology_method,
                obstacles=instance.obstacles,
            )
        return build_zero_skew_tree(
            instance.sinks,
            instance.source,
            wire,
            source_resistance=instance.source_resistance,
            topology_method=self.config.topology_method,
            obstacles=instance.obstacles,
        )

    def _repair_obstacles(
        self, instance: ClockNetworkInstance, tree: ClockTree, result: FlowResult
    ) -> None:
        if not self.config.enable_obstacle_avoidance or len(instance.obstacles) == 0:
            return
        analysis = analyze_composites(
            instance.buffer_library, max_parallel=self.config.composite_max_parallel
        )
        report = repair_obstacle_violations(
            tree,
            instance.obstacles,
            die=instance.die,
            driver=analysis.preferred_base,
            slew_limit=instance.slew_limit,
        )
        result.obstacle_detours = report.subtrees_detoured + report.maze_reroutes

    def _buffer_candidates(self, instance: ClockNetworkInstance) -> List:
        config = self.config
        if config.use_composite_inverters:
            analysis = analyze_composites(
                instance.buffer_library,
                max_parallel=config.composite_max_parallel,
                ladder_steps=config.composite_ladder_steps,
            )
            return analysis.ladder
        # Ablation mode: groups of the largest primitive inverter instead of
        # composites of the small one (the paper's scalability experiment).
        largest = max(instance.buffer_library, key=lambda b: b.input_cap)
        return composite_ladder(largest, 1, steps=config.composite_ladder_steps)

    def _insert_buffers(
        self, instance: ClockNetworkInstance, tree: ClockTree, result: FlowResult
    ) -> ClockTree:
        config = self.config
        sweep = insert_buffers_with_sizing(
            tree,
            self._buffer_candidates(instance),
            capacitance_limit=instance.capacitance_limit,
            power_reserve=config.power_reserve,
            slew_limit=instance.slew_limit,
            slew_margin=config.buffering_slew_margin,
            station_spacing=config.station_spacing,
            obstacles=instance.obstacles if len(instance.obstacles) else None,
            die=instance.die,
            max_options=config.max_dp_options,
        )
        result.chosen_buffer = sweep.chosen.buffer.name if sweep.chosen else None
        return sweep.tree

    def _correct_polarity(
        self, instance: ClockNetworkInstance, tree: ClockTree, result: FlowResult
    ) -> None:
        config = self.config
        result.inverted_sinks = count_inverted_sinks(tree)
        if result.inverted_sinks == 0:
            return
        smallest = instance.buffer_library.smallest
        stronger = [
            smallest.parallel(count) for count in (2, 4, 8, 16) if smallest.inverting
        ]
        correction = correct_sink_polarity(
            tree,
            smallest,
            strategy=config.polarity_strategy,
            slew_limit=instance.slew_limit,
            stronger_inverters=stronger,
        )
        result.polarity_inverters_added = correction.inverters_added

    def _record_stage(
        self,
        stage: str,
        tree: ClockTree,
        evaluator: ClockNetworkEvaluator,
        result: FlowResult,
        start_time: float,
        baseline: Optional["EvaluationReport"] = None,
    ) -> "EvaluationReport":
        report = baseline if baseline is not None else evaluator.evaluate(tree)
        record = StageRecord.from_report(
            stage, tree, report, elapsed_s=time.perf_counter() - start_time
        )
        result.stages.append(record)
        return report
