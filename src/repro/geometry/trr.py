"""Manhattan arcs and tilted rectangular regions (TRRs) for DME.

The Deferred Merge Embedding (DME) algorithm represents the locus of feasible
merge points of a subtree as a *merging segment*: a segment of slope +/-1
(a *Manhattan arc*) or a single point.  A *tilted rectangular region* (TRR)
is the set of points within a fixed Manhattan radius of a Manhattan arc; it
looks like a rectangle rotated by 45 degrees.

All operations are performed in the 45-degree rotated frame

    u = x + y,   v = x - y

where a Manhattan ball becomes an axis-aligned square, a Manhattan arc becomes
an axis-parallel segment, and a TRR becomes an axis-aligned rectangle.  TRR
intersection therefore reduces to rectangle intersection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.geometry.point import Point

__all__ = ["ManhattanArc", "TRR", "merging_segment"]

_TOL = 1e-7


@dataclass(frozen=True)
class ManhattanArc:
    """A segment of slope +1 or -1 (possibly degenerate to a point).

    Stored as the axis-aligned segment ``[ulo, uhi] x [vlo, vhi]`` in rotated
    coordinates, where exactly one of the two extents may be non-zero (a
    rotated-frame rectangle with both extents non-zero is a TRR core only if
    one side collapses; arcs always have at most one non-zero extent).
    """

    ulo: float
    uhi: float
    vlo: float
    vhi: float

    def __post_init__(self) -> None:
        if self.uhi < self.ulo - _TOL or self.vhi < self.vlo - _TOL:
            raise ValueError("invalid Manhattan arc extents")
        if self.uhi - self.ulo > _TOL and self.vhi - self.vlo > _TOL:
            raise ValueError(
                "a Manhattan arc must be degenerate in at least one rotated axis"
            )

    @staticmethod
    def from_point(p: Point) -> "ManhattanArc":
        return ManhattanArc(p.u, p.u, p.v, p.v)

    @staticmethod
    def from_endpoints(a: Point, b: Point) -> "ManhattanArc":
        """Build an arc from two points that lie on a common +/-45-degree line."""
        ulo, uhi = sorted((a.u, b.u))
        vlo, vhi = sorted((a.v, b.v))
        if uhi - ulo > _TOL and vhi - vlo > _TOL:
            raise ValueError(f"points {a} and {b} do not lie on a Manhattan arc")
        return ManhattanArc(ulo, uhi, vlo, vhi)

    @property
    def is_point(self) -> bool:
        return self.uhi - self.ulo <= _TOL and self.vhi - self.vlo <= _TOL

    @property
    def length(self) -> float:
        """Manhattan length of the arc (each unit of u or v spans 1 Manhattan unit)."""
        return max(self.uhi - self.ulo, self.vhi - self.vlo)

    def endpoints(self) -> Tuple[Point, Point]:
        return (
            Point.from_uv(self.ulo, self.vlo),
            Point.from_uv(self.uhi, self.vhi),
        )

    def any_point(self) -> Point:
        return Point.from_uv((self.ulo + self.uhi) / 2.0, (self.vlo + self.vhi) / 2.0)

    def distance_to_point(self, p: Point) -> float:
        """Manhattan distance from ``p`` to the closest point of the arc."""
        du = max(self.ulo - p.u, 0.0, p.u - self.uhi)
        dv = max(self.vlo - p.v, 0.0, p.v - self.vhi)
        # In rotated space the Manhattan distance between two points equals
        # max(|du|, |dv|) ... actually L1(x,y) == max(|du|,|dv|) when both are
        # measured between single points; for separations along independent
        # axes of an axis-aligned region the closest point realises both gaps
        # simultaneously, so the distance is max(du, dv).
        return max(du, dv)

    def closest_point_to(self, p: Point) -> Point:
        """Return the point of the arc closest (in Manhattan distance) to ``p``."""
        u = min(max(p.u, self.ulo), self.uhi)
        v = min(max(p.v, self.vlo), self.vhi)
        return Point.from_uv(u, v)

    def distance_to_arc(self, other: "ManhattanArc") -> float:
        du = max(self.ulo - other.uhi, other.ulo - self.uhi, 0.0)
        dv = max(self.vlo - other.vhi, other.vlo - self.vhi, 0.0)
        return max(du, dv)


@dataclass(frozen=True)
class TRR:
    """A tilted rectangular region: all points within ``radius`` of ``core``."""

    core: ManhattanArc
    radius: float

    def __post_init__(self) -> None:
        if self.radius < -_TOL:
            raise ValueError(f"TRR radius must be non-negative, got {self.radius}")

    @property
    def ulo(self) -> float:
        return self.core.ulo - self.radius

    @property
    def uhi(self) -> float:
        return self.core.uhi + self.radius

    @property
    def vlo(self) -> float:
        return self.core.vlo - self.radius

    @property
    def vhi(self) -> float:
        return self.core.vhi + self.radius

    def contains_point(self, p: Point, tol: float = _TOL) -> bool:
        return (
            self.ulo - tol <= p.u <= self.uhi + tol
            and self.vlo - tol <= p.v <= self.vhi + tol
        )

    def intersect(self, other: "TRR") -> Optional[ManhattanArc]:
        """Intersect two TRRs and return the result as a Manhattan arc.

        DME guarantees that when two TRRs are built with radii summing to the
        distance between their cores, the intersection collapses to an arc.
        When the full intersection is two-dimensional (radii overlap more than
        necessary) we return a maximal arc inside it -- the diagonal of the
        rotated-frame rectangle clipped to arc form -- which preserves the
        zero-skew property used by callers.
        """
        ulo = max(self.ulo, other.ulo)
        uhi = min(self.uhi, other.uhi)
        vlo = max(self.vlo, other.vlo)
        vhi = min(self.vhi, other.vhi)
        if uhi < ulo - _TOL or vhi < vlo - _TOL:
            return None
        uhi = max(uhi, ulo)
        vhi = max(vhi, vlo)
        du = uhi - ulo
        dv = vhi - vlo
        if du <= _TOL or dv <= _TOL:
            return ManhattanArc(ulo, uhi, vlo, vhi)
        # Two-dimensional overlap: keep the longer mid-line as the arc.
        if du >= dv:
            vmid = (vlo + vhi) / 2.0
            return ManhattanArc(ulo, uhi, vmid, vmid)
        umid = (ulo + uhi) / 2.0
        return ManhattanArc(umid, umid, vlo, vhi)


def merging_segment(
    arc_a: ManhattanArc, arc_b: ManhattanArc, radius_a: float, radius_b: float
) -> ManhattanArc:
    """Compute the DME merging segment of two child merging segments.

    ``radius_a`` and ``radius_b`` are the wire lengths allocated to the two
    children; the caller chooses them so that delays balance.  When the radii
    do not reach (``radius_a + radius_b`` < distance between the arcs) the
    children cannot meet and a ``ValueError`` is raised -- callers must extend
    the radii (detour wire) before merging.
    """
    dist = arc_a.distance_to_arc(arc_b)
    if radius_a + radius_b < dist - 1e-6:
        raise ValueError(
            f"merging radii {radius_a}+{radius_b} cannot span arc distance {dist}"
        )
    result = TRR(arc_a, radius_a).intersect(TRR(arc_b, radius_b))
    if result is None:
        raise ValueError("TRR intersection unexpectedly empty")
    return result
