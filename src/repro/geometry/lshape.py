"""L-shape (one-bend) route enumeration and obstacle-overlap scoring.

Step 1 of Contango's detouring algorithm replaces each point-to-point
connection that conflicts with an obstacle by the L-shape configuration that
minimizes overlap with the obstacle.  There are exactly two L-shapes between
two points that are not axis-aligned (bend at ``(bx, ay)`` or at ``(ax, by)``);
for axis-aligned points the straight segment is the only "L-shape".
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.geometry.obstacles import ObstacleSet
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.geometry.segment import LShape

__all__ = ["lshape_routes", "best_lshape", "lshape_obstacle_overlap"]


def lshape_routes(start: Point, end: Point) -> List[LShape]:
    """Return the (one or two) L-shape routes between two points."""
    if start.x == end.x or start.y == end.y:
        return [LShape(start, start, end)]
    return [
        LShape(start, Point(end.x, start.y), end),
        LShape(start, Point(start.x, end.y), end),
    ]


def lshape_obstacle_overlap(route: LShape, obstacles: Sequence[Rect]) -> float:
    """Total route length lying strictly inside any of the given rectangles."""
    return sum(route.overlap_length_with(rect) for rect in obstacles)


def best_lshape(
    start: Point,
    end: Point,
    obstacles: Optional[ObstacleSet] = None,
) -> LShape:
    """Return the L-shape between ``start`` and ``end`` with least obstacle overlap.

    Ties (including the obstacle-free case) are broken toward the
    horizontal-first configuration for determinism.
    """
    routes = lshape_routes(start, end)
    if obstacles is None or len(obstacles) == 0 or len(routes) == 1:
        return routes[0]
    rects = [o.rect for o in obstacles]
    scored = [(lshape_obstacle_overlap(r, rects), i, r) for i, r in enumerate(routes)]
    scored.sort(key=lambda item: (item[0], item[1]))
    return scored[0][2]
