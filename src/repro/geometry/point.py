"""Points in the Manhattan plane.

Coordinates are floats expressed in micrometres (um) throughout the library.
The choice of unit only matters for the technology constants in
:mod:`repro.cts.wirelib`; the geometry code is unit-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Tuple

__all__ = ["Point", "manhattan_distance", "bounding_box_of_points"]


@dataclass(frozen=True, order=True)
class Point:
    """A point in the plane with Manhattan-metric helpers."""

    x: float
    y: float

    def manhattan_to(self, other: "Point") -> float:
        """Return the Manhattan (L1) distance to ``other``."""
        return abs(self.x - other.x) + abs(self.y - other.y)

    def euclidean_to(self, other: "Point") -> float:
        """Return the Euclidean (L2) distance to ``other``."""
        return ((self.x - other.x) ** 2 + (self.y - other.y) ** 2) ** 0.5

    def translated(self, dx: float, dy: float) -> "Point":
        """Return a copy shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def midpoint(self, other: "Point") -> "Point":
        """Return the Euclidean midpoint between this point and ``other``."""
        return Point((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)

    def as_tuple(self) -> Tuple[float, float]:
        """Return ``(x, y)`` as a plain tuple."""
        return (self.x, self.y)

    def is_close(self, other: "Point", tol: float = 1e-9) -> bool:
        """Return True when both coordinates match within ``tol``."""
        return abs(self.x - other.x) <= tol and abs(self.y - other.y) <= tol

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y

    # Rotated ("diagonal") coordinates used by the DME/TRR machinery.  In the
    # 45-degree rotated frame a Manhattan ball becomes an axis-aligned square,
    # which turns TRR intersection into rectangle intersection.
    @property
    def u(self) -> float:
        """Rotated coordinate ``x + y``."""
        return self.x + self.y

    @property
    def v(self) -> float:
        """Rotated coordinate ``x - y``."""
        return self.x - self.y

    @staticmethod
    def from_uv(u: float, v: float) -> "Point":
        """Build a point from rotated coordinates ``u = x + y``, ``v = x - y``."""
        return Point((u + v) / 2.0, (u - v) / 2.0)


def manhattan_distance(a: Point, b: Point) -> float:
    """Return the Manhattan distance between two points."""
    return a.manhattan_to(b)


def bounding_box_of_points(points: Iterable[Point]) -> Tuple[float, float, float, float]:
    """Return ``(xmin, ymin, xmax, ymax)`` of a non-empty iterable of points."""
    pts = list(points)
    if not pts:
        raise ValueError("bounding_box_of_points() requires at least one point")
    xs = [p.x for p in pts]
    ys = [p.y for p in pts]
    return (min(xs), min(ys), max(xs), max(ys))
