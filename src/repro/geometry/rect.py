"""Axis-aligned rectangles (die outlines, placement obstacles, macro blocks)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.geometry.point import Point

__all__ = ["Rect"]


@dataclass(frozen=True)
class Rect:
    """A closed axis-aligned rectangle ``[xlo, xhi] x [ylo, yhi]``."""

    xlo: float
    ylo: float
    xhi: float
    yhi: float

    def __post_init__(self) -> None:
        if self.xhi < self.xlo or self.yhi < self.ylo:
            raise ValueError(
                f"degenerate rectangle: ({self.xlo}, {self.ylo}, {self.xhi}, {self.yhi})"
            )

    @staticmethod
    def from_corners(a: Point, b: Point) -> "Rect":
        """Build the bounding rectangle of two corner points."""
        return Rect(min(a.x, b.x), min(a.y, b.y), max(a.x, b.x), max(a.y, b.y))

    @staticmethod
    def from_center(center: Point, width: float, height: float) -> "Rect":
        """Build a rectangle of the given size centred on ``center``."""
        return Rect(
            center.x - width / 2.0,
            center.y - height / 2.0,
            center.x + width / 2.0,
            center.y + height / 2.0,
        )

    @property
    def width(self) -> float:
        return self.xhi - self.xlo

    @property
    def height(self) -> float:
        return self.yhi - self.ylo

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Point:
        return Point((self.xlo + self.xhi) / 2.0, (self.ylo + self.yhi) / 2.0)

    @property
    def perimeter(self) -> float:
        return 2.0 * (self.width + self.height)

    def corners(self) -> List[Point]:
        """Return the four corners in counter-clockwise order from (xlo, ylo)."""
        return [
            Point(self.xlo, self.ylo),
            Point(self.xhi, self.ylo),
            Point(self.xhi, self.yhi),
            Point(self.xlo, self.yhi),
        ]

    def contains_point(self, p: Point, *, strict: bool = False) -> bool:
        """Return True when ``p`` lies inside the rectangle.

        With ``strict=True`` the boundary is excluded, which is the test used
        to decide whether a wire end-point is *blocked* by an obstacle (points
        on the obstacle boundary are legal buffer locations).
        """
        if strict:
            return self.xlo < p.x < self.xhi and self.ylo < p.y < self.yhi
        return self.xlo <= p.x <= self.xhi and self.ylo <= p.y <= self.yhi

    def contains_rect(self, other: "Rect") -> bool:
        """Return True when ``other`` lies entirely inside this rectangle."""
        return (
            self.xlo <= other.xlo
            and self.ylo <= other.ylo
            and self.xhi >= other.xhi
            and self.yhi >= other.yhi
        )

    def intersects(self, other: "Rect", *, strict: bool = True) -> bool:
        """Return True when the two rectangles overlap.

        With ``strict=True`` (the default) rectangles that merely share a
        boundary are *not* considered intersecting; with ``strict=False`` they
        are (used to merge abutting obstacles into compound obstacles).
        """
        if strict:
            return (
                self.xlo < other.xhi
                and other.xlo < self.xhi
                and self.ylo < other.yhi
                and other.ylo < self.yhi
            )
        return (
            self.xlo <= other.xhi
            and other.xlo <= self.xhi
            and self.ylo <= other.yhi
            and other.ylo <= self.yhi
        )

    def intersection(self, other: "Rect") -> Optional["Rect"]:
        """Return the overlap rectangle, or None when the rectangles are disjoint."""
        xlo = max(self.xlo, other.xlo)
        ylo = max(self.ylo, other.ylo)
        xhi = min(self.xhi, other.xhi)
        yhi = min(self.yhi, other.yhi)
        if xhi < xlo or yhi < ylo:
            return None
        return Rect(xlo, ylo, xhi, yhi)

    def union_bbox(self, other: "Rect") -> "Rect":
        """Return the bounding box of the two rectangles."""
        return Rect(
            min(self.xlo, other.xlo),
            min(self.ylo, other.ylo),
            max(self.xhi, other.xhi),
            max(self.yhi, other.yhi),
        )

    def expanded(self, margin: float) -> "Rect":
        """Return a rectangle grown by ``margin`` on every side."""
        return Rect(
            self.xlo - margin, self.ylo - margin, self.xhi + margin, self.yhi + margin
        )

    def clamp_point(self, p: Point) -> Point:
        """Return the point of the rectangle closest to ``p``."""
        return Point(
            min(max(p.x, self.xlo), self.xhi), min(max(p.y, self.ylo), self.yhi)
        )

    def distance_to_point(self, p: Point) -> float:
        """Return the Manhattan distance from ``p`` to the rectangle (0 if inside)."""
        dx = max(self.xlo - p.x, 0.0, p.x - self.xhi)
        dy = max(self.ylo - p.y, 0.0, p.y - self.yhi)
        return dx + dy
