"""Placement obstacles (macro blocks) and compound-obstacle handling.

The ISPD'09 contest model allows clock *wires* to cross obstacles but forbids
placing *buffers* on them.  Two abutting rectangular obstacles leave no room
for a buffer between them, so Contango treats them as one compound obstacle;
:class:`ObstacleSet` performs that merging and answers the geometric queries
needed by tree construction and detouring.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.geometry.segment import Segment

__all__ = ["Obstacle", "ObstacleSet"]


@dataclass(frozen=True)
class Obstacle:
    """A single rectangular blockage over which buffers may not be placed."""

    rect: Rect
    name: str = ""

    @property
    def area(self) -> float:
        return self.rect.area


@dataclass
class CompoundObstacle:
    """A maximal group of mutually abutting/overlapping rectangular obstacles.

    The compound obstacle is represented by its member rectangles plus the
    bounding box used for detour routing (detours follow the bounding-box
    contour, which is a conservative but robust approximation of the
    rectilinear contour of the union).
    """

    members: List[Obstacle] = field(default_factory=list)

    @property
    def bbox(self) -> Rect:
        if not self.members:
            raise ValueError("empty compound obstacle")
        box = self.members[0].rect
        for obs in self.members[1:]:
            box = box.union_bbox(obs.rect)
        return box

    def blocks_point(self, p: Point) -> bool:
        """True when a buffer cannot legally be placed at ``p``."""
        return any(o.rect.contains_point(p, strict=True) for o in self.members)

    def crossed_by(self, seg: Segment) -> bool:
        """True when the segment crosses the interior of any member rectangle."""
        return any(seg.intersects_rect(o.rect, strict=True) for o in self.members)


class ObstacleSet:
    """A collection of obstacles with compound-obstacle merging and queries."""

    def __init__(self, obstacles: Sequence[Obstacle] = ()) -> None:
        self._obstacles: List[Obstacle] = list(obstacles)
        self._compounds: Optional[List[CompoundObstacle]] = None

    def __len__(self) -> int:
        return len(self._obstacles)

    def __iter__(self):
        return iter(self._obstacles)

    @property
    def obstacles(self) -> List[Obstacle]:
        return list(self._obstacles)

    def add(self, obstacle: Obstacle) -> None:
        self._obstacles.append(obstacle)
        self._compounds = None

    # ------------------------------------------------------------------
    # Compound obstacles
    # ------------------------------------------------------------------
    def compound_obstacles(self) -> List[CompoundObstacle]:
        """Group obstacles that touch or overlap into compound obstacles."""
        if self._compounds is not None:
            return self._compounds
        n = len(self._obstacles)
        parent = list(range(n))

        def find(i: int) -> int:
            while parent[i] != i:
                parent[i] = parent[parent[i]]
                i = parent[i]
            return i

        def union(i: int, j: int) -> None:
            ri, rj = find(i), find(j)
            if ri != rj:
                parent[ri] = rj

        for i in range(n):
            for j in range(i + 1, n):
                if self._obstacles[i].rect.intersects(
                    self._obstacles[j].rect, strict=False
                ):
                    union(i, j)

        groups: Dict[int, CompoundObstacle] = {}
        for i, obs in enumerate(self._obstacles):
            groups.setdefault(find(i), CompoundObstacle()).members.append(obs)
        self._compounds = list(groups.values())
        return self._compounds

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def blocks_point(self, p: Point) -> bool:
        """True when a buffer cannot be placed at ``p`` (strictly inside a blockage)."""
        return any(o.rect.contains_point(p, strict=True) for o in self._obstacles)

    def crossing_obstacles(self, seg: Segment) -> List[Obstacle]:
        """Return the obstacles whose interiors the segment crosses."""
        return [o for o in self._obstacles if seg.intersects_rect(o.rect, strict=True)]

    def crossing_compounds(self, seg: Segment) -> List[CompoundObstacle]:
        """Return the compound obstacles crossed by the segment."""
        return [c for c in self.compound_obstacles() if c.crossed_by(seg)]

    def is_route_clear(self, points: Sequence[Point]) -> bool:
        """True when the polyline through ``points`` avoids all obstacle interiors."""
        for a, b in zip(points, points[1:]):
            if self.crossing_obstacles(Segment(a, b)):
                return False
        return True

    def legal_buffer_location(self, p: Point, die: Optional[Rect] = None) -> bool:
        """True when a buffer may be placed at ``p`` (on die, not inside a blockage)."""
        if die is not None and not die.contains_point(p):
            return False
        return not self.blocks_point(p)

    def nearest_legal_point(
        self, p: Point, die: Optional[Rect] = None, step: float = 1.0, max_iter: int = 10000
    ) -> Point:
        """Return a legal buffer location near ``p``.

        Searches outward on a spiral of Manhattan rings with the given step.
        Used when a buffer-insertion candidate lands inside a blockage: the
        buffer is pushed to the closest legal location (typically the blockage
        boundary).
        """
        if self.legal_buffer_location(p, die):
            return p
        ring = 1
        while ring <= max_iter:
            r = ring * step
            candidates = [
                p.translated(r, 0),
                p.translated(-r, 0),
                p.translated(0, r),
                p.translated(0, -r),
                p.translated(r / 2, r / 2),
                p.translated(-r / 2, r / 2),
                p.translated(r / 2, -r / 2),
                p.translated(-r / 2, -r / 2),
            ]
            for cand in candidates:
                if self.legal_buffer_location(cand, die):
                    return cand
            ring += 1
        raise ValueError(f"no legal buffer location found near {p}")

    def push_out_of_obstacles(self, p: Point, die: Optional[Rect] = None) -> Point:
        """Move a point that lies inside a blockage to the nearest legal location.

        The candidate locations are the projections of ``p`` onto the four
        sides of every blocking rectangle (the closest boundary points); the
        nearest candidate that is itself legal (and on the die) is returned.
        Falls back to a spiral search when every projection is blocked, e.g.
        deep inside a cluster of abutting macros.
        """
        if self.legal_buffer_location(p, die):
            return p
        candidates: List[Point] = []
        for obstacle in self._obstacles:
            rect = obstacle.rect
            if not rect.contains_point(p, strict=True):
                continue
            candidates.extend(
                [
                    Point(rect.xlo, p.y),
                    Point(rect.xhi, p.y),
                    Point(p.x, rect.ylo),
                    Point(p.x, rect.yhi),
                ]
            )
        legal = [c for c in candidates if self.legal_buffer_location(c, die)]
        if legal:
            return min(legal, key=lambda c: p.manhattan_to(c))
        span = max((o.rect.width + o.rect.height for o in self._obstacles), default=1.0)
        return self.nearest_legal_point(p, die, step=max(span / 100.0, 1.0))

    def total_blocked_area(self) -> float:
        """Sum of member areas (overlaps double-counted; used only for reporting)."""
        return sum(o.area for o in self._obstacles)
