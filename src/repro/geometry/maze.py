"""Grid maze router for obstacle-avoiding point-to-point connections.

Contango's detouring step performs "shortest-path maze routing around the
obstacles" for point-to-point connections that conflict with blockages.  This
module provides a light-weight router on an adaptive Hanan-style grid: grid
lines are placed at the route endpoints and at (slightly expanded) obstacle
boundaries, which keeps the graph tiny even for large dies while still
containing a shortest rectilinear obstacle-avoiding path whenever one exists.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Tuple

from repro.geometry.obstacles import ObstacleSet
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.geometry.segment import Segment

__all__ = ["MazeRouter", "MazeRouteError"]


class MazeRouteError(RuntimeError):
    """Raised when no obstacle-avoiding route exists between two points."""


class MazeRouter:
    """Shortest rectilinear path router avoiding obstacle interiors."""

    def __init__(
        self,
        obstacles: ObstacleSet,
        die: Optional[Rect] = None,
        clearance: float = 0.0,
    ) -> None:
        self._obstacles = obstacles
        self._die = die
        self._clearance = clearance

    # ------------------------------------------------------------------
    def route(self, start: Point, end: Point) -> List[Point]:
        """Return the corner points of a shortest obstacle-avoiding route.

        The returned list starts with ``start`` and ends with ``end``; between
        consecutive points the route is a straight rectilinear segment that
        does not cross any obstacle interior.  Raises :class:`MazeRouteError`
        when the endpoints are separated by blockages on every candidate grid
        path (e.g. an endpoint strictly enclosed by obstacles).
        """
        direct = Segment(start, end)
        if direct.is_rectilinear and not self._obstacles.crossing_obstacles(direct):
            return [start, end]

        xs, ys = self._grid_coordinates(start, end)
        nodes = [(x, y) for x in xs for y in ys]
        index: Dict[Tuple[float, float], int] = {n: i for i, n in enumerate(nodes)}

        start_key = (start.x, start.y)
        end_key = (end.x, end.y)
        if start_key not in index or end_key not in index:
            raise MazeRouteError("route endpoints missing from routing grid")

        dist = {i: float("inf") for i in range(len(nodes))}
        prev: Dict[int, int] = {}
        src = index[start_key]
        dst = index[end_key]
        dist[src] = 0.0
        heap: List[Tuple[float, int]] = [(0.0, src)]
        while heap:
            d, node = heapq.heappop(heap)
            if d > dist[node] + 1e-12:
                continue
            if node == dst:
                break
            x, y = nodes[node]
            for nx, ny in self._neighbors(x, y, xs, ys):
                nbr = index[(nx, ny)]
                seg = Segment(Point(x, y), Point(nx, ny))
                if self._segment_blocked(seg):
                    continue
                nd = d + seg.length
                if nd < dist[nbr] - 1e-12:
                    dist[nbr] = nd
                    prev[nbr] = node
                    heapq.heappush(heap, (nd, nbr))

        if dist[dst] == float("inf"):
            raise MazeRouteError(f"no obstacle-avoiding route from {start} to {end}")

        path_idx = [dst]
        while path_idx[-1] != src:
            path_idx.append(prev[path_idx[-1]])
        path_idx.reverse()
        points = [Point(*nodes[i]) for i in path_idx]
        return _simplify_collinear(points)

    def route_length(self, start: Point, end: Point) -> float:
        """Return the length of the shortest obstacle-avoiding route."""
        points = self.route(start, end)
        return sum(a.manhattan_to(b) for a, b in zip(points, points[1:]))

    # ------------------------------------------------------------------
    def _grid_coordinates(self, start: Point, end: Point) -> Tuple[List[float], List[float]]:
        eps = max(self._clearance, 1e-6)
        xs = {start.x, end.x}
        ys = {start.y, end.y}
        for obs in self._obstacles:
            xs.update((obs.rect.xlo - eps, obs.rect.xhi + eps))
            ys.update((obs.rect.ylo - eps, obs.rect.yhi + eps))
        if self._die is not None:
            xs = {min(max(x, self._die.xlo), self._die.xhi) for x in xs}
            ys = {min(max(y, self._die.ylo), self._die.yhi) for y in ys}
            xs.update((start.x, end.x))
            ys.update((start.y, end.y))
        return sorted(xs), sorted(ys)

    @staticmethod
    def _neighbors(
        x: float, y: float, xs: Sequence[float], ys: Sequence[float]
    ) -> List[Tuple[float, float]]:
        xi = xs.index(x)
        yi = ys.index(y)
        out = []
        if xi > 0:
            out.append((xs[xi - 1], y))
        if xi < len(xs) - 1:
            out.append((xs[xi + 1], y))
        if yi > 0:
            out.append((x, ys[yi - 1]))
        if yi < len(ys) - 1:
            out.append((x, ys[yi + 1]))
        return out

    def _segment_blocked(self, seg: Segment) -> bool:
        if self._obstacles.crossing_obstacles(seg):
            return True
        if self._die is not None and not (
            self._die.contains_point(seg.a) and self._die.contains_point(seg.b)
        ):
            return True
        return False


def _simplify_collinear(points: List[Point]) -> List[Point]:
    """Remove intermediate points on straight runs of a rectilinear path."""
    if len(points) <= 2:
        return points
    out = [points[0]]
    for prev, cur, nxt in zip(points, points[1:], points[2:]):
        same_x = prev.x == cur.x == nxt.x
        same_y = prev.y == cur.y == nxt.y
        if not (same_x or same_y):
            out.append(cur)
    out.append(points[-1])
    return out
