"""Planar Manhattan geometry substrate used by clock-tree synthesis.

The clock-tree algorithms in :mod:`repro.cts` and :mod:`repro.core` operate on
rectilinear (Manhattan) geometry: sinks are points, wires are sequences of
horizontal/vertical segments, obstacles are axis-aligned rectangles, and the
DME algorithm manipulates *Manhattan arcs* (segments of slope +/-1) and
*tilted rectangular regions* (TRRs).

This package provides those primitives plus two routing helpers:

* :mod:`repro.geometry.maze` -- a grid maze router for obstacle-avoiding
  point-to-point connections, and
* :mod:`repro.geometry.lshape` -- L-shape (one-bend) route enumeration with
  obstacle-overlap scoring.
"""

from repro.geometry.point import Point, manhattan_distance
from repro.geometry.segment import Segment, LShape
from repro.geometry.rect import Rect
from repro.geometry.trr import ManhattanArc, TRR, merging_segment
from repro.geometry.obstacles import Obstacle, ObstacleSet
from repro.geometry.maze import MazeRouter, MazeRouteError
from repro.geometry.lshape import lshape_routes, best_lshape

__all__ = [
    "Point",
    "manhattan_distance",
    "Segment",
    "LShape",
    "Rect",
    "ManhattanArc",
    "TRR",
    "merging_segment",
    "Obstacle",
    "ObstacleSet",
    "MazeRouter",
    "MazeRouteError",
    "lshape_routes",
    "best_lshape",
]
