"""Rectilinear wire segments and one-bend (L-shape) routes."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.geometry.point import Point
from repro.geometry.rect import Rect

__all__ = ["Segment", "LShape"]


@dataclass(frozen=True)
class Segment:
    """A straight wire segment between two points.

    Clock wires are rectilinear, so most segments are horizontal or vertical;
    the class nevertheless supports arbitrary endpoints because DME embedding
    may temporarily produce point-to-point connections that are later
    decomposed into L-shapes.
    """

    a: Point
    b: Point

    @property
    def length(self) -> float:
        """Manhattan length of the segment."""
        return self.a.manhattan_to(self.b)

    @property
    def is_horizontal(self) -> bool:
        return self.a.y == self.b.y

    @property
    def is_vertical(self) -> bool:
        return self.a.x == self.b.x

    @property
    def is_rectilinear(self) -> bool:
        return self.is_horizontal or self.is_vertical

    @property
    def is_degenerate(self) -> bool:
        return self.a == self.b

    def bounding_box(self) -> Rect:
        return Rect.from_corners(self.a, self.b)

    def reversed(self) -> "Segment":
        return Segment(self.b, self.a)

    def midpoint(self) -> Point:
        return self.a.midpoint(self.b)

    def point_at(self, fraction: float) -> Point:
        """Return the point a ``fraction`` of the way from ``a`` to ``b``.

        For rectilinear segments the interpolation follows the wire; for a
        general segment it interpolates linearly, which matches the Manhattan
        parametrisation of an L-shape drawn as a "diagonal wire".
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        return Point(
            self.a.x + (self.b.x - self.a.x) * fraction,
            self.a.y + (self.b.y - self.a.y) * fraction,
        )

    def split_at(self, fraction: float) -> List["Segment"]:
        """Split the segment into two at the given fraction."""
        mid = self.point_at(fraction)
        return [Segment(self.a, mid), Segment(mid, self.b)]

    def intersects_rect(self, rect: Rect, *, strict: bool = True) -> bool:
        """Return True when the segment crosses the interior of ``rect``.

        Only rectilinear segments receive an exact test; a non-rectilinear
        (point-to-point) segment is treated as its bounding box, which is the
        conservative test used when deciding whether an un-embedded DME edge
        may conflict with an obstacle.
        """
        if self.is_degenerate:
            return rect.contains_point(self.a, strict=strict)
        if self.is_rectilinear:
            bbox = self.bounding_box()
            return rect.intersects(bbox, strict=strict)
        return rect.intersects(self.bounding_box(), strict=strict)


@dataclass(frozen=True)
class LShape:
    """A one-bend rectilinear route from ``start`` to ``end`` via ``bend``."""

    start: Point
    bend: Point
    end: Point

    def __post_init__(self) -> None:
        first = Segment(self.start, self.bend)
        second = Segment(self.bend, self.end)
        if not (first.is_rectilinear and second.is_rectilinear):
            raise ValueError("L-shape legs must be rectilinear")

    @property
    def segments(self) -> List[Segment]:
        segs = []
        if self.start != self.bend:
            segs.append(Segment(self.start, self.bend))
        if self.bend != self.end:
            segs.append(Segment(self.bend, self.end))
        if not segs:
            segs.append(Segment(self.start, self.end))
        return segs

    @property
    def length(self) -> float:
        return self.start.manhattan_to(self.bend) + self.bend.manhattan_to(self.end)

    def overlap_length_with(self, rect: Rect) -> float:
        """Return the total length of this route lying strictly inside ``rect``."""
        total = 0.0
        for seg in self.segments:
            total += _rectilinear_overlap_length(seg, rect)
        return total


def _rectilinear_overlap_length(seg: Segment, rect: Rect) -> float:
    """Length of a rectilinear segment's intersection with a rectangle's interior."""
    if seg.is_degenerate:
        return 0.0
    if seg.is_horizontal:
        y = seg.a.y
        if not (rect.ylo < y < rect.yhi):
            return 0.0
        lo, hi = sorted((seg.a.x, seg.b.x))
        return max(0.0, min(hi, rect.xhi) - max(lo, rect.xlo))
    if seg.is_vertical:
        x = seg.a.x
        if not (rect.xlo < x < rect.xhi):
            return 0.0
        lo, hi = sorted((seg.a.y, seg.b.y))
        return max(0.0, min(hi, rect.yhi) - max(lo, rect.ylo))
    # Fallback for a non-rectilinear segment: use the clipped bounding-box
    # semi-perimeter as a conservative overlap estimate.
    clipped: Optional[Rect] = seg.bounding_box().intersection(rect)
    if clipped is None:
        return 0.0
    return clipped.width + clipped.height
