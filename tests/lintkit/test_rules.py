"""Per-rule fixture tests: every rule fires on its bad fixture, stays quiet
on the good one, and suppressions silence real findings."""

from pathlib import Path

import pytest

from repro.lintkit import LintSettings, lint_paths

FIXTURES = Path(__file__).parent / "fixtures"

#: Extra per-rule options needed to anchor fixtures outside the repro tree.
FIXTURE_OPTIONS = {
    "wallclock-in-fingerprint-path": {"roots": ("fp_root",)},
}


def findings_for(rule, *files):
    settings = LintSettings(
        select=[rule],
        rule_options={rule: FIXTURE_OPTIONS.get(rule, {})},
    )
    result = lint_paths([FIXTURES / name for name in files], settings)
    return [f for f in result.findings if f.rule == rule]


CASES = [
    ("unseeded-rng", "bad_unseeded_rng.py", "good_unseeded_rng.py", 5),
    ("wallclock-in-fingerprint-path", "fp_helper.py", "good_wallclock.py", 3),
    ("unjournaled-mutation", "bad_unjournaled.py", "good_unjournaled.py", 3),
    ("pool-unpicklable", "bad_pool.py", "good_pool.py", 3),
    ("fingerprint-compare-field", "bad_compare_field.py", "good_compare_field.py", 3),
    ("registry-drift", "bad_registry.py", "good_registry.py", 2),
    ("perfcase-registered", "bad_perfcase.py", "good_perfcase.py", 2),
    ("record-roundtrip-symmetry", "bad_roundtrip.py", "good_roundtrip.py", 2),
    ("bare-dict-record", "bad_bare_dict.py", "good_bare_dict.py", 2),
    (
        "untimed-wallclock",
        "bad_untimed_wallclock.py",
        "good_untimed_wallclock.py",
        5,
    ),
    ("blocking-in-async", "bad_blocking_async.py", "good_blocking_async.py", 5),
]


@pytest.mark.parametrize(
    "rule,bad,good,expected", CASES, ids=[case[0] for case in CASES]
)
class TestRuleFixturePairs:
    def test_bad_fixture_fires(self, rule, bad, good, expected):
        files = (bad,) if rule != "wallclock-in-fingerprint-path" else (
            "fp_root.py",
            bad,
        )
        findings = findings_for(rule, *files)
        assert len(findings) == expected, [f.message for f in findings]
        assert all(f.rule == rule for f in findings)

    def test_good_fixture_is_clean(self, rule, bad, good, expected):
        files = (good,) if rule != "wallclock-in-fingerprint-path" else (
            "fp_root.py",
            good,
        )
        assert findings_for(rule, *files) == []


class TestFindingAnchors:
    def test_unseeded_rng_points_at_the_call(self):
        (first, *_rest) = findings_for("unseeded-rng", "bad_unseeded_rng.py")
        assert first.path.endswith("bad_unseeded_rng.py")
        assert first.line == 10  # random.Random(3)
        assert "repro.seeding" in first.message

    def test_wallclock_names_the_reaching_module(self):
        findings = findings_for(
            "wallclock-in-fingerprint-path", "fp_root.py", "fp_helper.py"
        )
        assert {f.path.split("/")[-1] for f in findings} == {"fp_helper.py"}
        assert any("time.time" in f.message for f in findings)

    def test_roundtrip_reports_both_directions(self):
        findings = findings_for("record-roundtrip-symmetry", "bad_roundtrip.py")
        messages = " ".join(f.message for f in findings)
        assert "'notes'" in messages  # written, never read
        assert "'extra'" in messages  # read, never written


class TestSuppressionsInPractice:
    def test_suppressed_fixture_keeps_only_unsilenced_findings(self):
        findings = findings_for("unseeded-rng", "suppressed.py")
        # Five RNG calls, three suppressed: the mismatched-rule marker and
        # the non-comment-line-above case must still fire.
        assert len(findings) == 2
        assert sorted(f.line for f in findings) == [20, 25]


class TestRuleConfiguration:
    def test_severity_override_downgrades_to_warning(self):
        settings = LintSettings(
            select=["unseeded-rng"],
            severity_overrides={"unseeded-rng": "warning"},
        )
        result = lint_paths([FIXTURES / "bad_unseeded_rng.py"], settings)
        assert result.errors == []
        assert len(result.warnings) == 5

    def test_allow_modules_option_exempts_a_module(self):
        settings = LintSettings(
            select=["unseeded-rng"],
            rule_options={"unseeded-rng": {"allow_modules": ("bad_unseeded_rng",)}},
        )
        result = lint_paths([FIXTURES / "bad_unseeded_rng.py"], settings)
        assert result.findings == []
