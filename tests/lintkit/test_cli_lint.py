"""End-to-end tests of the ``repro lint`` CLI subcommand."""

import json
from pathlib import Path

from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures"


class TestLintCli:
    def test_findings_exit_code_one(self, capsys):
        code = main(["lint", str(FIXTURES / "bad_unseeded_rng.py")])
        assert code == 1
        out = capsys.readouterr().out
        assert "[unseeded-rng]" in out

    def test_clean_file_exit_code_zero(self, capsys):
        code = main(
            ["lint", str(FIXTURES / "good_unseeded_rng.py"),
             "--select", "unseeded-rng"]
        )
        assert code == 0
        assert "0 errors" in capsys.readouterr().out

    def test_json_format_parses_and_is_schema_one(self, capsys):
        code = main(
            ["lint", str(FIXTURES / "bad_unseeded_rng.py"), "--format", "json"]
        )
        assert code == 1
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == 1
        assert document["summary"]["errors"] == 5

    def test_output_writes_the_artifact(self, tmp_path, capsys):
        artifact = tmp_path / "lint-report.json"
        code = main(
            ["lint", str(FIXTURES / "bad_unseeded_rng.py"),
             "--format", "json", "--output", str(artifact)]
        )
        assert code == 1
        # The artifact and stdout carry the identical document.
        assert artifact.read_text() == capsys.readouterr().out

    def test_select_and_ignore_narrow_the_rules(self, capsys):
        code = main(
            ["lint", str(FIXTURES / "bad_unseeded_rng.py"),
             "--select", "unseeded-rng", "--ignore", "unseeded-rng"]
        )
        assert code == 0
        assert "0 rules" in capsys.readouterr().out

    def test_unknown_rule_is_a_usage_error(self, capsys):
        code = main(
            ["lint", str(FIXTURES / "bad_unseeded_rng.py"),
             "--select", "no-such-rule"]
        )
        assert code == 2
        assert "no-such-rule" in capsys.readouterr().err

    def test_missing_path_is_a_usage_error(self, capsys):
        code = main(["lint", str(FIXTURES / "does_not_exist.py")])
        assert code == 2
        assert "does not exist" in capsys.readouterr().err

    def test_list_rules_prints_all_eight(self, capsys):
        code = main(["lint", "--list-rules"])
        assert code == 0
        out = capsys.readouterr().out
        for rule in (
            "unseeded-rng",
            "wallclock-in-fingerprint-path",
            "unjournaled-mutation",
            "pool-unpicklable",
            "fingerprint-compare-field",
            "registry-drift",
            "record-roundtrip-symmetry",
            "bare-dict-record",
        ):
            assert rule in out
