"""Meta-test: the linter's own source tree (all of src/repro) lints clean.

This is the same gate CI runs (``repro lint src/``); keeping it in the test
suite means a rule regression or a new invariant violation fails locally
before it fails the CI job.
"""

from pathlib import Path

import repro
from repro.lintkit import lint_paths, render_text

SRC_ROOT = Path(repro.__file__).resolve().parent


def test_repro_source_tree_is_lint_clean():
    result = lint_paths([SRC_ROOT])
    assert result.findings == [], "\n" + render_text(result)
    # The gate is meaningful: the whole tree was checked with every rule.
    assert result.files_checked >= 70
    assert len(result.rules_run) >= 8


def test_lintkit_dogfoods_itself():
    result = lint_paths([SRC_ROOT / "lintkit"])
    assert result.findings == [], "\n" + render_text(result)
