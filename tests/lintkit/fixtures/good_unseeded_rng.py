"""Fixture: RNG derived through repro.seeding -- nothing to flag."""

import numpy as np

from repro.seeding import derive_rng, derive_seed


def sampled(seed, job):
    rng = derive_rng(seed, job)
    child = derive_seed(seed, job, "mc")
    return rng.normal(0.0, 1.0, 4), child


def annotations_are_fine(rng: "np.random.Generator") -> "np.random.Generator":
    # Mentioning np.random.Generator in types must not fire the rule.
    return rng
