"""Fixture: async code that waits properly (awaits, bridges, sync helpers)."""

import asyncio
import time


async def patient_handler():
    await asyncio.sleep(0.5)
    return "on time"


async def bridged(pool, job):
    # The sanctioned pattern: blocking work runs on an executor bridge and
    # the coroutine awaits the loop-native future.
    loop = asyncio.get_running_loop()
    record = await loop.run_in_executor(pool, run_blocking, job)
    future = pool.submit(run_blocking, job)
    return record, await asyncio.wrap_future(future)


async def annotated_teardown(pool):
    pool.shutdown(wait=False)  # repro: lint-ok[blocking-in-async] non-blocking teardown


async def with_sync_helper(jobs):
    def collect(futures):
        # A nested plain def is the function a bridge executes off-loop;
        # blocking here is its whole point.
        return [future.result() for future in futures]

    return collect(jobs)


def plain_sync(future):
    time.sleep(0.01)
    return future.result()
