"""Fixture: timing through tracer spans plus annotated raw-timer sites."""

import time


def traced_timing(tracer):
    with tracer.span("evaluate"):
        return 42


def batch_wall_clock():
    # A record-level wall-clock total is one of the sanctioned raw-timer
    # sites; the annotation keeps the rule quiet.
    start = time.perf_counter()  # repro: lint-ok[untimed-wallclock]
    return start


def unrelated_time_use():
    return time.strftime("%Y")
