"""Fixture: wallclock use outside any fingerprint root -- not flagged."""

import time


def metadata_timestamp():
    # Fine: this module is not reachable from the configured roots.
    return time.time()
