"""Fixture: symmetric round trips, literal and dynamic both."""

from dataclasses import dataclass, fields


@dataclass
class TidyRecord:
    job: str
    seed: int

    def to_record(self):
        return {"job": self.job, "seed": self.seed}

    @classmethod
    def from_record(cls, record):
        return cls(job=record["job"], seed=record["seed"])


@dataclass
class DynamicRecord:
    job: str
    seed: int

    def to_record(self):
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_record(cls, record):
        return cls(job=record["job"], seed=record["seed"])
