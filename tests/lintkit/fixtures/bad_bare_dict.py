"""Fixture: hand-rolled result dicts carrying the record signature keys."""


def run_payload(job, instance):
    return {
        "job": job,
        "instance": instance,
        "flow": "contango",
        "engine": "elmore",
        "skew_ps": 12.5,
    }


def error_payload(job, exc):
    return {"job": job, "error": str(exc)}
