"""Fixture: registrable definitions that never reach their registries."""

from repro.core.pipeline import OptimizationPass, register_pass
from repro.scenarios.base import ScenarioFamily, register_family


class ForgottenPass(OptimizationPass):
    name = "forgotten"

    def run(self, tree, context):
        return tree


ORPHAN = ScenarioFamily(
    name="orphan",
    description="defined but never registered",
    defaults={},
    build=None,
)
