"""Fixture: raw monotonic-timer calls the untimed-wallclock rule must flag."""

import time
from time import monotonic, perf_counter


def hand_rolled_timing():
    start = time.perf_counter()
    elapsed_ns = time.perf_counter_ns()
    drift = time.monotonic()
    return start, elapsed_ns, drift


def imported_names():
    a = perf_counter()
    b = monotonic()
    return a, b
