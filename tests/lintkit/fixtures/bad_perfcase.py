"""Fixture: concrete perf cases that never reach the case registry."""

from repro.perf.case import PerfCase


class ForgottenCase(PerfCase):
    name = "forgotten-case"

    def fingerprint(self):
        return "deadbeef"

    def run_once(self, tracer):
        return None


class ForgottenSubCase(ForgottenCase):
    name = "forgotten-sub-case"
