"""Fixture: typed records (or non-signature dicts) -- nothing to flag."""

from repro.api.records import ErrorRecord, RunRecord


def run_payload(job, instance):
    return RunRecord(job=job, instance=instance, flow="contango", engine="elmore")


def error_payload(job, exc):
    return ErrorRecord(job=job, error=str(exc)).to_record()


def summary_payload(count):
    # Missing the signature keys: an ordinary dict, not a smuggled record.
    return {"jobs": count, "flow": "contango"}
