"""Fixture: every registrable definition reaches its registry."""

from repro.core.pipeline import OptimizationPass, register_pass
from repro.scenarios.base import ScenarioFamily, register_family


@register_pass
class RegisteredPass(OptimizationPass):
    name = "registered"

    def run(self, tree, context):
        return tree


class AbstractHelperPass(OptimizationPass):
    """No concrete ``name``: an intermediate base, not a registrable pass."""


DIRECT = register_family(
    ScenarioFamily(
        name="direct",
        description="registered at construction",
        defaults={},
        build=None,
    )
)

LATER = ScenarioFamily(
    name="later",
    description="registered through its binding",
    defaults={},
    build=None,
)
register_family(LATER)
