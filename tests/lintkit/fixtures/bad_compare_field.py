"""Fixture: compare=False fields breaking every derived-state convention."""

from dataclasses import dataclass, field


@dataclass
class Summary:
    name: str
    cached_total: float = field(compare=False)  # required input + bare name

    def to_record(self):
        return {"name": self.name, "cached_total": self.cached_total}
