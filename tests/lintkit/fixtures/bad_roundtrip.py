"""Fixture: asymmetric to_record/from_record literal key sets."""


class LossyRecord:
    def __init__(self, job, seed, notes):
        self.job = job
        self.seed = seed
        self.notes = notes

    def to_record(self):
        return {"job": self.job, "seed": self.seed, "notes": self.notes}

    @classmethod
    def from_record(cls, record):
        # "notes" is silently dropped; "extra" can never be carried.
        return cls(record["job"], record.get("seed"), record.get("extra"))
