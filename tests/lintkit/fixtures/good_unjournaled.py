"""Fixture: journal-disciplined tree edits -- mutators or journal_node first."""

from repro.cts import tree


def rewire(clock_tree, node, wide):
    clock_tree.set_wire_type(node, wide)


def surgical(clock_tree, node, wide):
    clock_tree.journal_node(node)
    node.wire_type = wide
    clock_tree.touch(node)


class LocalState:
    def __init__(self):
        self.route = []

    def reset(self):
        # self-writes are this class's own business, not tree mutation
        self.route = []
