"""Fixture: conforming compare=False cache fields."""

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class Summary:
    name: str
    _total: Optional[float] = field(default=None, compare=False)
    _length: float = field(init=False, default=0.0, compare=False)

    def to_record(self):
        return {"name": self.name}
