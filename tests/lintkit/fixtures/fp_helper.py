"""Fixture: transitively reachable from fp_root; the wallclock call is bad."""

import time
import uuid
from datetime import datetime

stamp = 0.0


def impure_payload():
    return {
        "at": time.time(),
        "when": datetime.now(),
        "token": uuid.uuid4(),
    }
