"""Fixture: suppression-comment semantics."""

import random


def same_line():
    return random.Random(1)  # repro: lint-ok[unseeded-rng] fixture stream


def line_above():
    # repro: lint-ok[unseeded-rng] fixture stream
    return random.Random(2)


def bare_marker_silences_everything():
    return random.Random(3)  # repro: lint-ok legacy carve-out


def wrong_rule_does_not_silence():
    return random.Random(4)  # repro: lint-ok[pool-unpicklable] mismatched


def not_comment_only_above():
    x = 1  # repro: lint-ok[unseeded-rng] applies to THIS line only
    return x, random.Random(5)
