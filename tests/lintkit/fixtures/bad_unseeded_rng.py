"""Fixture: every kind of direct RNG construction the rule must flag."""

import random

import numpy as np
from numpy.random import default_rng


def legacy_stream():
    rng = random.Random(3)
    jitter = random.gauss(0.0, 1.0)
    return rng, jitter


def numpy_streams():
    a = np.random.default_rng(7)
    b = np.random.normal(0.0, 1.0, 8)
    c = default_rng(11)
    return a, b, c
