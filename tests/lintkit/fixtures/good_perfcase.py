"""Fixture: every concrete perf case reaches the case registry."""

from repro.perf.case import PerfCase, register_case


@register_case
class RegisteredCase(PerfCase):
    name = "registered-case"

    def fingerprint(self):
        return "deadbeef"

    def run_once(self, tracer):
        return None


class AbstractTimingCase(PerfCase):
    """No concrete ``name``: an intermediate base, not a runnable case."""


class LaterCase(PerfCase):
    name = "later-case"

    def fingerprint(self):
        return "deadbeef"

    def run_once(self, tracer):
        return None


register_case(LaterCase)
