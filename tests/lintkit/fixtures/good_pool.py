"""Fixture: module-level workers only -- picklable by reference."""

from concurrent.futures import ProcessPoolExecutor

from repro.runner import BatchRunner, dispatch_jobs


def worker(spec):
    return spec.run()


def run_all(jobs):
    with ProcessPoolExecutor() as pool:
        futures = [pool.submit(worker, job) for job in jobs]
    return futures


def run_batch(jobs):
    return BatchRunner(jobs, 4, worker=worker)


def run_dispatch(pool, jobs):
    # Lambdas outside the pool boundary stay legal.
    ordered = sorted(jobs, key=lambda job: job.seed)
    return dispatch_jobs(pool, ordered, worker)
