"""Fixture: a fingerprint root importing a helper with a wallclock call."""

import hashlib

import fp_helper


def digest(lines):
    text = "\n".join(lines) + "\n"
    return hashlib.sha256(text.encode("utf-8")).hexdigest(), fp_helper.stamp
