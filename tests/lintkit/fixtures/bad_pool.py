"""Fixture: unpicklable callables crossing the process-pool boundary."""

from concurrent.futures import ProcessPoolExecutor

from repro.runner import BatchRunner, dispatch_jobs


def run_all(jobs):
    results = []
    with ProcessPoolExecutor() as pool:
        for job in jobs:
            results.append(pool.submit(lambda spec: spec.run(), job))
    return results


def run_batch(jobs):
    def local_worker(spec):
        return spec.run()

    return BatchRunner(jobs, 4, worker=local_worker)


def run_dispatch(pool, jobs):
    handler = lambda spec: spec.run()  # noqa: E731
    return dispatch_jobs(pool, jobs, handler)
