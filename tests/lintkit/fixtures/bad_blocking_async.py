"""Fixture: synchronous waits inside async defs the blocking-in-async rule flags."""

import time
from concurrent.futures import as_completed, wait


async def sleepy_handler():
    time.sleep(0.5)
    return "late"


async def pool_waiter(pool, jobs):
    futures = [pool.submit(job) for job in jobs]
    wait(futures)
    first = next(as_completed(futures))
    return first.result()


class Server:
    async def close(self, pool):
        pool.shutdown(wait=True)
