"""Fixture: direct tree-node attribute writes outside the mutator APIs."""

from repro.cts import tree


def rewire(node, wide):
    node.wire_type = wide
    node.snake_length += 10.0


def reroot(parent, child):
    child.parent = parent
