"""Reporter tests: the JSON document is schema-stable and byte-deterministic."""

import json
from pathlib import Path

from repro.lintkit import (
    JSON_SCHEMA_VERSION,
    LintSettings,
    lint_paths,
    render_json,
    render_text,
)

FIXTURES = Path(__file__).parent / "fixtures"


def lint_bad_rng():
    return lint_paths(
        [FIXTURES / "bad_unseeded_rng.py"], LintSettings(select=["unseeded-rng"])
    )


class TestJsonReport:
    def test_schema_and_required_keys(self):
        document = json.loads(render_json(lint_bad_rng()))
        assert document["schema"] == JSON_SCHEMA_VERSION == 1
        assert document["tool"] == "repro-lintkit"
        assert set(document) == {
            "schema",
            "tool",
            "files_checked",
            "rules_run",
            "summary",
            "findings",
        }
        assert document["summary"] == {"errors": 5, "warnings": 0}
        assert document["files_checked"] == 1
        assert document["rules_run"] == ["unseeded-rng"]

    def test_finding_record_shape(self):
        document = json.loads(render_json(lint_bad_rng()))
        finding = document["findings"][0]
        assert set(finding) == {"path", "line", "col", "rule", "severity", "message"}
        assert finding["rule"] == "unseeded-rng"
        assert finding["severity"] == "error"
        assert isinstance(finding["line"], int)

    def test_output_is_byte_deterministic(self):
        assert render_json(lint_bad_rng()) == render_json(lint_bad_rng())

    def test_no_timestamps_or_environment_detail(self):
        text = render_json(lint_bad_rng())
        for needle in ("time", "date", "host", "version"):
            assert f'"{needle}"' not in text

    def test_findings_sorted_by_location(self):
        document = json.loads(render_json(lint_bad_rng()))
        keys = [
            (f["path"], f["line"], f["col"], f["rule"])
            for f in document["findings"]
        ]
        assert keys == sorted(keys)


class TestTextReport:
    def test_line_shape_and_summary(self):
        text = render_text(lint_bad_rng())
        lines = text.strip().splitlines()
        assert lines[0].endswith("via repro.seeding.derive_rng/derive_seed")
        assert ": error [unseeded-rng]" in lines[0]
        assert lines[-1] == "1 files checked, 1 rules, 5 errors, 0 warnings"

    def test_clean_run_is_just_the_summary(self):
        result = lint_paths(
            [FIXTURES / "good_unseeded_rng.py"],
            LintSettings(select=["unseeded-rng"]),
        )
        assert render_text(result) == "1 files checked, 1 rules, 0 errors, 0 warnings\n"
