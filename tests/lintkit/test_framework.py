"""Framework-level tests: registry contract, import resolution, suppressions."""

from pathlib import Path

import pytest

from repro.lintkit import (
    RULE_REGISTRY,
    LintRule,
    ModuleContext,
    available_rules,
    module_name_for,
    register_rule,
    resolve_rules,
)

FIXTURES = Path(__file__).parent / "fixtures"


def ctx_for(source: str, name: str = "fixture_mod") -> ModuleContext:
    return ModuleContext(Path(f"{name}.py"), source, module=name)


class TestRegistry:
    def test_eight_domain_rules_registered(self):
        expected = {
            "unseeded-rng",
            "wallclock-in-fingerprint-path",
            "unjournaled-mutation",
            "pool-unpicklable",
            "fingerprint-compare-field",
            "registry-drift",
            "record-roundtrip-symmetry",
            "bare-dict-record",
        }
        assert expected <= set(RULE_REGISTRY)
        assert len(RULE_REGISTRY) >= 8

    def test_register_rejects_missing_name(self):
        class Nameless(LintRule):
            pass

        with pytest.raises(ValueError, match="non-empty 'name'"):
            register_rule(Nameless)

    def test_register_rejects_duplicate_name(self):
        class Duplicate(LintRule):
            name = "unseeded-rng"

        with pytest.raises(ValueError, match="already registered"):
            register_rule(Duplicate)

    def test_resolve_unknown_rule_lists_valid_names(self):
        with pytest.raises(KeyError, match="no-such-rule"):
            resolve_rules(["no-such-rule"])

    def test_available_rules_sorted(self):
        names = available_rules()
        assert names == sorted(names)


class TestModuleNames:
    def test_package_module_name_from_init_walk(self):
        root = Path(__file__).resolve().parents[2] / "src"
        path = root / "repro" / "store" / "fingerprint.py"
        assert module_name_for(path) == "repro.store.fingerprint"

    def test_package_init_names_the_package(self):
        root = Path(__file__).resolve().parents[2] / "src"
        path = root / "repro" / "lintkit" / "__init__.py"
        assert module_name_for(path) == "repro.lintkit"

    def test_loose_file_keeps_its_stem(self):
        assert module_name_for(FIXTURES / "bad_unseeded_rng.py") == "bad_unseeded_rng"


class TestImportResolution:
    def test_aliased_import_resolves(self):
        ctx = ctx_for("import numpy as np\nx = np.random.default_rng(3)\n")
        call = ctx.tree.body[1].value
        assert ctx.resolve(call.func) == "numpy.random.default_rng"

    def test_from_import_resolves(self):
        ctx = ctx_for("from repro.seeding import derive_rng\nr = derive_rng(7)\n")
        call = ctx.tree.body[1].value
        assert ctx.resolve(call.func) == "repro.seeding.derive_rng"

    def test_local_names_do_not_resolve(self):
        ctx = ctx_for("def f(rng):\n    return rng.normal()\n")
        call = ctx.tree.body[0].body[0].value
        assert ctx.resolve(call.func) is None

    def test_relative_import_resolves_against_package(self):
        root = Path(__file__).resolve().parents[2] / "src"
        path = root / "repro" / "store" / "store.py"
        ctx = ModuleContext(path, "from . import fingerprint\n")
        assert "repro.store.fingerprint" in ctx.imported_modules


class TestSuppressions:
    def test_same_line(self):
        ctx = ctx_for("x = 1  # repro: lint-ok[unseeded-rng] why\n")
        assert ctx.suppressed(1, "unseeded-rng")
        assert not ctx.suppressed(1, "pool-unpicklable")

    def test_comment_line_above(self):
        ctx = ctx_for("# repro: lint-ok[unseeded-rng] why\nx = 1\n")
        assert ctx.suppressed(2, "unseeded-rng")

    def test_bare_marker_silences_all_rules(self):
        ctx = ctx_for("x = 1  # repro: lint-ok legacy\n")
        assert ctx.suppressed(1, "unseeded-rng")
        assert ctx.suppressed(1, "registry-drift")

    def test_code_line_does_not_cover_the_next_line(self):
        ctx = ctx_for("x = 1  # repro: lint-ok[unseeded-rng]\ny = 2\n")
        assert not ctx.suppressed(2, "unseeded-rng")

    def test_multiple_rules_in_one_bracket(self):
        ctx = ctx_for("x = 1  # repro: lint-ok[unseeded-rng, pool-unpicklable]\n")
        assert ctx.suppressed(1, "unseeded-rng")
        assert ctx.suppressed(1, "pool-unpicklable")
        assert not ctx.suppressed(1, "registry-drift")
