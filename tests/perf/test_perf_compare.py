"""Unit tests for perf-entry comparison: hard counter gates, banded timing
gates, and span-subtree localization of timing regressions."""

import pytest

from repro.perf.compare import (
    CounterDiff,
    TimingBands,
    compare_entries,
    diff_counter_maps,
    diff_path_counters,
    timing_regression,
)

BANDS = TimingBands(k_iqr=3.0, rel_floor=0.25, abs_floor_s=0.005)


def stats(median, iqr=0.0):
    return {"n": 3, "median": median, "iqr": iqr, "min": median, "max": median}


def make_entry(**overrides):
    entry = {
        "schema": 1,
        "kind": "perf-case",
        "case": "tiny",
        "package_version": "1.0.0",
        "fingerprint": "f00d",
        "counters": {"evaluations": 10, "cache_hits": 7},
        "span_counters": {"job/evaluate": {"evaluations": 10}},
        "checks": [{"name": "always", "ok": True, "detail": "", "timing": False}],
        "timings": {
            "repeats": 3,
            "wall_clock_s": stats(1.0, 0.01),
            "spans": {
                "job": {"total_s": stats(1.0), "self_s": stats(0.1, 0.01)},
                "job/evaluate": {"total_s": stats(0.9), "self_s": stats(0.5, 0.02)},
                "job/evaluate/propagate": {
                    "total_s": stats(0.4),
                    "self_s": stats(0.4, 0.02),
                },
            },
            "extra": {"phase_s": stats(0.2, 0.01)},
        },
    }
    entry.update(overrides)
    return entry


class TestCounterDiffs:
    def test_exact_match_yields_no_diffs(self):
        assert diff_counter_maps({"a": 1}, {"a": 1}) == []

    def test_added_removed_changed_statuses(self):
        diffs = diff_counter_maps({"gone": 1, "moved": 2}, {"moved": 3, "new": 4})
        assert [(d.counter, d.status) for d in diffs] == [
            ("gone", "removed"),
            ("moved", "changed"),
            ("new", "added"),
        ]
        assert diffs[0].to_row()["path"] == "*"

    def test_path_variant_sorts_by_path_then_counter(self):
        diffs = diff_path_counters(
            {"b/span": {"x": 1}, "a/span": {"y": 2}},
            {"b/span": {"x": 9}, "a/span": {"y": 5}},
        )
        assert [d.path for d in diffs] == ["a/span", "b/span"]

    def test_zero_is_distinct_from_absent(self):
        (diff,) = diff_counter_maps({"hits": 0}, {})
        assert diff == CounterDiff(path="", counter="hits", base=0, cand=None)


class TestTimingBands:
    def test_within_every_band_is_quiet(self):
        # 1.0 + max(3*0.1, 25%, 5ms) = 1.3 allowance
        assert not timing_regression(1.0, 0.1, 1.29, BANDS)

    def test_iqr_band_dominates_when_noise_is_large(self):
        # 3 * 0.5 IQR allows up to 2.5 even though rel_floor says 1.25
        assert not timing_regression(1.0, 0.5, 2.4, BANDS)
        assert timing_regression(1.0, 0.5, 2.6, BANDS)

    def test_rel_floor_guards_degenerate_iqr(self):
        assert not timing_regression(1.0, 0.0, 1.24, BANDS)
        assert timing_regression(1.0, 0.0, 1.26, BANDS)

    def test_abs_floor_guards_near_zero_baselines(self):
        # rel floor on 1ms would be 1.25ms; the 5ms absolute floor wins
        assert not timing_regression(0.001, 0.0, 0.005, BANDS)
        assert timing_regression(0.001, 0.0, 0.0075, BANDS)


class TestCompareEntries:
    def test_identical_entries_are_clean(self):
        comparison = compare_entries(make_entry(), make_entry(), BANDS)
        assert not comparison.counter_regression
        assert not comparison.timing_regression
        assert comparison.notes == []

    def test_case_mismatch_raises(self):
        with pytest.raises(ValueError, match="different cases"):
            compare_entries(make_entry(), make_entry(case="other"), BANDS)

    def test_counter_change_is_a_hard_regression(self):
        cand = make_entry(counters={"evaluations": 11, "cache_hits": 7})
        comparison = compare_entries(make_entry(), cand, BANDS)
        assert comparison.counter_regression
        (diff,) = comparison.counter_diffs
        assert (diff.counter, diff.base, diff.cand) == ("evaluations", 10, 11)

    def test_span_counter_change_reports_the_path(self):
        cand = make_entry(span_counters={"job/evaluate": {"evaluations": 12}})
        (diff,) = compare_entries(make_entry(), cand, BANDS).counter_diffs
        assert diff.path == "job/evaluate"

    def test_failed_candidate_check_is_a_hard_regression(self):
        cand = make_entry(
            checks=[{"name": "parity", "ok": False, "detail": "", "timing": False}]
        )
        comparison = compare_entries(make_entry(), cand, BANDS)
        assert comparison.failed_checks == ["parity"]
        assert comparison.counter_regression

    def test_fingerprint_change_is_a_note_not_an_error(self):
        cand = make_entry(fingerprint="beef")
        comparison = compare_entries(make_entry(), cand, BANDS)
        assert any("fingerprint changed" in note for note in comparison.notes)

    def test_timing_flag_localizes_to_the_deepest_moved_span(self):
        cand = make_entry()
        # Slow the leaf 10x; every ancestor's total inflates, but only the
        # leaf's *self* time moves, so only the leaf self_s flags -- and it
        # is the source.
        cand["timings"]["spans"]["job/evaluate/propagate"]["self_s"] = stats(4.0)
        comparison = compare_entries(make_entry(), cand, BANDS)
        assert comparison.timing_regression
        sources = [flag.path for flag in comparison.timing_sources]
        assert sources == ["job/evaluate/propagate"]

    def test_ancestor_flags_are_not_sources_when_a_descendant_flagged(self):
        cand = make_entry()
        cand["timings"]["spans"]["job/evaluate"]["self_s"] = stats(5.0)
        cand["timings"]["spans"]["job/evaluate/propagate"]["self_s"] = stats(4.0)
        comparison = compare_entries(make_entry(), cand, BANDS)
        flagged = {flag.path: flag.source for flag in comparison.timing_flags}
        assert flagged["job/evaluate"] is False
        assert flagged["job/evaluate/propagate"] is True

    def test_wall_clock_flag_defers_to_span_sources(self):
        cand = make_entry()
        cand["timings"]["wall_clock_s"] = stats(5.0)
        cand["timings"]["spans"]["job/evaluate/propagate"]["self_s"] = stats(4.0)
        comparison = compare_entries(make_entry(), cand, BANDS)
        wall = next(f for f in comparison.timing_flags if f.metric == "wall_clock_s")
        assert wall.source is False
        # Without any span flag the wall clock is itself the source.
        lone = make_entry()
        lone["timings"]["wall_clock_s"] = stats(5.0)
        comparison = compare_entries(make_entry(), lone, BANDS)
        (flag,) = comparison.timing_flags
        assert flag.source is True

    def test_extra_timing_series_flag_and_are_their_own_source(self):
        cand = make_entry()
        cand["timings"]["extra"]["phase_s"] = stats(2.0)
        comparison = compare_entries(make_entry(), cand, BANDS)
        (flag,) = comparison.timing_flags
        assert flag.path == "(extra) phase_s"
        assert flag.source is True

    def test_new_spans_in_only_one_entry_are_ignored(self):
        cand = make_entry()
        cand["timings"]["spans"]["job/new_phase"] = {"self_s": stats(9.0)}
        assert not compare_entries(make_entry(), cand, BANDS).timing_flags

    def test_to_record_is_json_shaped(self):
        cand = make_entry(counters={"evaluations": 11, "cache_hits": 7})
        record = compare_entries(make_entry(), cand, BANDS).to_record()
        assert record["counter_regression"] is True
        assert record["timing_regression"] is False
        assert record["counter_diffs"][0]["status"] == "changed"
