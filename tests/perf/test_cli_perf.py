"""End-to-end tests for ``repro perf run|compare|trend`` and ``repro trace --diff``."""

import json

import pytest

from repro.cli import main
from repro.obs import Tracer, strip_timings, summarize
from repro.perf.case import PERF_SCHEMA
from repro.perf.ledger import PerfLedger
from repro.store import RunStore


def make_entry(case="tiny", **overrides):
    entry = {
        "schema": PERF_SCHEMA,
        "kind": "perf-case",
        "case": case,
        "description": "stub",
        "package_version": "1.0.0",
        "fingerprint": "f00d",
        "counters": {"evaluations": 10},
        "span_counters": {"job/evaluate": {"evaluations": 10}},
        "checks": [{"name": "always", "ok": True, "detail": "", "timing": False}],
        "timings": {
            "repeats": 2,
            "wall_clock_s": {"n": 2, "median": 0.1, "iqr": 0.001},
            "spans": {
                "job": {
                    "total_s": {"median": 0.1, "iqr": 0.0},
                    "self_s": {"median": 0.02, "iqr": 0.0},
                },
                "job/evaluate": {
                    "total_s": {"median": 0.08, "iqr": 0.0},
                    "self_s": {"median": 0.08, "iqr": 0.0},
                },
            },
            "extra": {},
            "checks": [],
        },
    }
    entry.update(overrides)
    return entry


def write_ledger(root, *entries):
    ledger = PerfLedger(root)
    for entry in entries:
        ledger.append(entry)
    return ledger


class TestPerfRun:
    def test_list_cases_names_the_full_registry(self, capsys):
        assert main(["perf", "run", "--list-cases"]) == 0
        printed = capsys.readouterr().out
        for name in ("evaluator", "variation", "service", "propagation", "trace"):
            assert name in printed

    def test_unknown_case_is_a_usage_error(self, capsys):
        assert main(["perf", "run", "--case", "nope"]) == 2
        assert "unknown perf case" in capsys.readouterr().err

    def test_run_records_ledger_and_merged_document(self, tmp_path, capsys):
        ledger_dir = tmp_path / "ledger"
        output = tmp_path / "BENCH_all.json"
        code = main(
            ["perf", "run", "--case", "service", "--repeats", "1",
             "--ledger", str(ledger_dir), "--output", str(output)]
        )
        assert code == 0
        (entry,) = PerfLedger(ledger_dir).entries()
        assert entry["case"] == "service"
        assert "recorded_at" in entry["timings"]
        payload = json.loads(output.read_text())
        assert payload["kind"] == "perf-batch"
        assert list(payload["cases"]) == ["service"]
        printed = capsys.readouterr().out
        assert "service: wall" in printed
        assert "check(s) ok" in printed

    def test_merged_counters_are_deterministic_and_order_independent(
        self, tmp_path, capsys
    ):
        """The ledger-determinism contract: two runs of the same cases --
        with the --case flags in opposite orders -- agree byte-for-byte
        once wall-clock is stripped."""
        outputs = []
        for label, selection in (
            ("a", ["--case", "evaluator", "--case", "service"]),
            ("b", ["--case", "service", "--case", "evaluator"]),
        ):
            output = tmp_path / f"BENCH_{label}.json"
            assert main(
                ["perf", "run", "--repeats", "1", "--output", str(output)]
                + selection
            ) == 0
            payload = json.loads(output.read_text())
            outputs.append(
                json.dumps(
                    {
                        name: strip_timings(entry)
                        for name, entry in payload["cases"].items()
                    },
                    sort_keys=True,
                )
            )
        assert outputs[0] == outputs[1]


class TestPerfCompare:
    def test_identical_ledgers_pass_the_gate(self, tmp_path, capsys):
        write_ledger(tmp_path / "base", make_entry())
        write_ledger(tmp_path / "cand", make_entry())
        code = main(
            ["perf", "compare", str(tmp_path / "base"), str(tmp_path / "cand"),
             "--fail-on-counter-regression"]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "tiny: ok" in printed
        assert "0 counter regression(s)" in printed

    def test_counter_change_fails_the_gate_with_an_exact_diff(
        self, tmp_path, capsys
    ):
        write_ledger(tmp_path / "base", make_entry())
        write_ledger(
            tmp_path / "cand", make_entry(counters={"evaluations": 15})
        )
        code = main(
            ["perf", "compare", str(tmp_path / "base"), str(tmp_path / "cand"),
             "--fail-on-counter-regression"]
        )
        assert code == 1
        printed = capsys.readouterr().out
        assert "COUNTER REGRESSION" in printed
        assert "evaluations" in printed and "15" in printed

    def test_counter_change_without_the_flag_reports_but_passes(
        self, tmp_path, capsys
    ):
        write_ledger(tmp_path / "base", make_entry())
        write_ledger(
            tmp_path / "cand", make_entry(counters={"evaluations": 15})
        )
        assert main(
            ["perf", "compare", str(tmp_path / "base"), str(tmp_path / "cand")]
        ) == 0
        assert "COUNTER REGRESSION" in capsys.readouterr().out

    def test_timing_regression_is_localized_to_the_moved_span(
        self, tmp_path, capsys
    ):
        cand = make_entry()
        cand["timings"]["spans"]["job/evaluate"]["self_s"] = {
            "median": 4.0, "iqr": 0.0,
        }
        write_ledger(tmp_path / "base", make_entry())
        write_ledger(tmp_path / "cand", cand)
        code = main(
            ["perf", "compare", str(tmp_path / "base"), str(tmp_path / "cand"),
             "--fail-on-timing-regression"]
        )
        assert code == 1
        printed = capsys.readouterr().out
        assert "timing regression" in printed
        assert "localized to: job/evaluate" in printed
        assert "<-- source" in printed

    def test_failed_candidate_check_fails_the_counter_gate(self, tmp_path, capsys):
        cand = make_entry(
            checks=[{"name": "parity", "ok": False, "detail": "", "timing": False}]
        )
        write_ledger(tmp_path / "base", make_entry())
        write_ledger(tmp_path / "cand", cand)
        code = main(
            ["perf", "compare", str(tmp_path / "base"), str(tmp_path / "cand"),
             "--fail-on-counter-regression"]
        )
        assert code == 1
        assert "failed check: parity" in capsys.readouterr().out

    def test_case_missing_from_candidate_is_a_coverage_gap(self, tmp_path, capsys):
        write_ledger(tmp_path / "base", make_entry(), make_entry(case="other"))
        write_ledger(tmp_path / "cand", make_entry())
        code = main(
            ["perf", "compare", str(tmp_path / "base"), str(tmp_path / "cand"),
             "--fail-on-counter-regression"]
        )
        assert code == 1
        assert "other: missing from the candidate" in capsys.readouterr().err

    def test_no_common_cases_cannot_pass_the_gate(self, tmp_path, capsys):
        write_ledger(tmp_path / "base", make_entry(case="a"))
        write_ledger(tmp_path / "cand", make_entry(case="b"))
        code = main(
            ["perf", "compare", str(tmp_path / "base"), str(tmp_path / "cand"),
             "--fail-on-counter-regression"]
        )
        assert code == 1
        assert "no common cases" in capsys.readouterr().err

    def test_merged_documents_are_accepted_as_sources(self, tmp_path, capsys):
        batch = {
            "schema": PERF_SCHEMA,
            "kind": "perf-batch",
            "package_version": "1.0.0",
            "cases": {"tiny": make_entry()},
        }
        path = tmp_path / "BENCH_all.json"
        path.write_text(json.dumps(batch))
        write_ledger(tmp_path / "base", make_entry())
        assert main(
            ["perf", "compare", str(tmp_path / "base"), str(path),
             "--fail-on-counter-regression"]
        ) == 0

    def test_bad_sources_are_usage_errors(self, tmp_path, capsys):
        write_ledger(tmp_path / "base", make_entry())
        assert main(
            ["perf", "compare", str(tmp_path / "missing"), str(tmp_path / "base")]
        ) == 2
        assert "no perf ledger" in capsys.readouterr().err
        bogus = tmp_path / "bogus.json"
        bogus.write_text(json.dumps({"kind": "other"}))
        assert main(
            ["perf", "compare", str(tmp_path / "base"), str(bogus)]
        ) == 2
        assert "not a merged perf-run document" in capsys.readouterr().err

    def test_case_filter_restricts_the_comparison(self, tmp_path, capsys):
        write_ledger(tmp_path / "base", make_entry(), make_entry(case="other"))
        write_ledger(
            tmp_path / "cand",
            make_entry(),
            make_entry(case="other", counters={"evaluations": 99}),
        )
        assert main(
            ["perf", "compare", str(tmp_path / "base"), str(tmp_path / "cand"),
             "--case", "tiny", "--fail-on-counter-regression"]
        ) == 0


class TestPerfTrend:
    def test_renders_one_table_per_case(self, tmp_path, capsys):
        write_ledger(
            tmp_path,
            make_entry(package_version="1.0.0"),
            make_entry(package_version="1.1.0", counters={"evaluations": 8}),
        )
        assert main(["perf", "trend", str(tmp_path)]) == 0
        printed = capsys.readouterr().out
        assert "== tiny ==" in printed
        assert "1.0.0" in printed and "1.1.0" in printed
        assert "evaluations" in printed

    def test_missing_ledger_is_a_usage_error(self, tmp_path, capsys):
        assert main(["perf", "trend", str(tmp_path / "nope")]) == 2
        assert "no perf ledger" in capsys.readouterr().err

    def test_counter_selection_is_respected(self, tmp_path, capsys):
        write_ledger(tmp_path, make_entry())
        assert main(
            ["perf", "trend", str(tmp_path), "--counter", "evaluations"]
        ) == 0
        assert "evaluations" in capsys.readouterr().out


def traced_record(job, stages=3):
    tracer = Tracer()
    with tracer.span("job"):
        with tracer.span("evaluate") as span:
            span.count("stages", stages)
        with tracer.span("propagate") as span:
            span.count("corners", 4)
    return {
        "job": job,
        "fingerprint": "f00d",
        "trace": summarize(tracer).to_record(),
    }


def write_store(root, records, run_id="r1"):
    store = RunStore(root)
    for record in records:
        store.append(record, run_id)
    return store


class TestTraceDiff:
    def test_identical_traces_diff_clean(self, tmp_path, capsys):
        write_store(tmp_path / "base", [traced_record("jobA")])
        write_store(tmp_path / "cand", [traced_record("jobA")])
        code = main(
            ["trace", str(tmp_path / "base"), "--diff", str(tmp_path / "cand")]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "== jobA ==" in printed
        assert "span-path counters identical" in printed

    def test_counter_drift_exits_nonzero_with_the_span_path(
        self, tmp_path, capsys
    ):
        write_store(tmp_path / "base", [traced_record("jobA", stages=3)])
        write_store(tmp_path / "cand", [traced_record("jobA", stages=5)])
        code = main(
            ["trace", str(tmp_path / "base"), "--diff", str(tmp_path / "cand")]
        )
        assert code == 1
        printed = capsys.readouterr().out
        assert "job/evaluate" in printed
        assert "stages" in printed and "changed" in printed

    def test_job_membership_differences_are_reported(self, tmp_path, capsys):
        write_store(
            tmp_path / "base", [traced_record("jobA"), traced_record("jobB")]
        )
        write_store(tmp_path / "cand", [traced_record("jobA")])
        code = main(
            ["trace", str(tmp_path / "base"), "--diff", str(tmp_path / "cand")]
        )
        assert code == 1
        assert "only in baseline: jobB" in capsys.readouterr().err

    def test_pre_paths_records_fall_back_to_merged_counters(
        self, tmp_path, capsys
    ):
        old_base = traced_record("jobA", stages=3)
        old_cand = traced_record("jobA", stages=5)
        for record in (old_base, old_cand):
            del record["trace"]["paths"]  # a record from before the field
        write_store(tmp_path / "base", [old_base])
        write_store(tmp_path / "cand", [old_cand])
        code = main(
            ["trace", str(tmp_path / "base"), "--diff", str(tmp_path / "cand")]
        )
        assert code == 1
        printed = capsys.readouterr().out
        assert "*" in printed and "stages" in printed

    def test_untraced_selections_are_usage_errors(self, tmp_path, capsys):
        write_store(tmp_path / "base", [{"job": "jobA", "fingerprint": "x"}])
        write_store(tmp_path / "cand", [traced_record("jobA")])
        code = main(
            ["trace", str(tmp_path / "base"), "--diff", str(tmp_path / "cand")]
        )
        assert code == 2
        assert "need traced records" in capsys.readouterr().err
