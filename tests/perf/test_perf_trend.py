"""Unit tests for the per-case ledger trend tables."""

from repro.perf.case import PERF_SCHEMA
from repro.perf.ledger import PerfLedger
from repro.perf.trend import DEFAULT_TREND_COUNTERS, trend_columns, trend_rows


def make_entry(version="1.0.0", counters=None):
    return {
        "schema": PERF_SCHEMA,
        "kind": "perf-case",
        "case": "tiny",
        "package_version": version,
        "fingerprint": "f00d",
        "counters": dict(counters or {}),
        "span_counters": {},
        "checks": [],
        "timings": {"repeats": 1, "wall_clock_s": {"median": 0.01, "iqr": 0.0}},
    }


def seeded_ledger(tmp_path):
    ledger = PerfLedger(tmp_path)
    ledger.append(
        make_entry(version="1.0.0", counters={"evaluations": 10, "widgets": 1})
    )
    ledger.append(
        make_entry(version="1.1.0", counters={"evaluations": 8, "widgets": 1})
    )
    return ledger


class TestTrendRows:
    def test_one_row_per_entry_in_append_order(self, tmp_path):
        rows, _ = trend_rows(seeded_ledger(tmp_path), "tiny")
        assert [row["version"] for row in rows] == ["1.0.0", "1.1.0"]
        assert rows[0]["fingerprint"] == "f00d"
        assert rows[0]["wall_median"] == 0.01
        # recorded_at comes from the timings block, truncated to seconds.
        assert len(rows[0]["recorded_at"]) == 19

    def test_default_counters_are_the_present_evaluator_trio(self, tmp_path):
        rows, selected = trend_rows(seeded_ledger(tmp_path), "tiny")
        # Only "evaluations" of the default trio is present in any entry.
        assert selected == ["evaluations"]
        assert [row["evaluations"] for row in rows] == [10, 8]

    def test_explicit_counters_override_the_default(self, tmp_path):
        rows, selected = trend_rows(
            seeded_ledger(tmp_path), "tiny", counters=["widgets", "missing"]
        )
        assert selected == ["widgets", "missing"]
        assert rows[0]["widgets"] == 1
        assert rows[0]["missing"] is None

    def test_unknown_case_yields_no_rows(self, tmp_path):
        rows, selected = trend_rows(seeded_ledger(tmp_path), "nope")
        assert rows == [] and selected == []


class TestTrendColumns:
    def test_fixed_prefix_then_one_column_per_counter(self):
        columns = trend_columns(["evaluations"])
        keys = [key for key, _, _ in columns]
        assert keys[:5] == [
            "version",
            "fingerprint",
            "recorded_at",
            "wall_median",
            "wall_iqr",
        ]
        assert keys[5:] == ["evaluations"]

    def test_default_trio_is_what_the_docs_promise(self):
        assert DEFAULT_TREND_COUNTERS == (
            "evaluations",
            "cache_hits",
            "cache_misses",
        )
