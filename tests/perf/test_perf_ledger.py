"""Unit tests for the append-only JSONL performance ledger."""

import json

import pytest

from repro.obs import strip_timings
from repro.perf.case import PERF_SCHEMA
from repro.perf.ledger import PerfLedger, entry_key


def make_entry(case="tiny", fingerprint="f00d", version="1.0.0", **extra):
    entry = {
        "schema": PERF_SCHEMA,
        "kind": "perf-case",
        "case": case,
        "description": "stub",
        "package_version": version,
        "fingerprint": fingerprint,
        "counters": {"widgets": 4},
        "span_counters": {"work": {"widgets": 4}},
        "checks": [{"name": "always", "ok": True, "detail": "", "timing": False}],
        "timings": {"repeats": 1, "wall_clock_s": {"median": 0.01, "iqr": 0.0}},
    }
    entry.update(extra)
    return entry


class TestEntryKey:
    def test_is_the_case_fingerprint_version_triple(self):
        assert entry_key(make_entry()) == ("tiny", "f00d", "1.0.0")

    def test_missing_axes_become_empty_strings(self):
        assert entry_key({}) == ("", "", "")


class TestAppend:
    def test_round_trips_and_stamps_inside_timings(self, tmp_path):
        ledger = PerfLedger(tmp_path / "ledger")
        stored = ledger.append(make_entry())
        assert "recorded_at" in stored["timings"]
        assert "recorded_at" not in stored["counters"]
        (read,) = ledger.entries()
        assert read == stored
        # The stamp never perturbs the deterministic remainder.
        assert strip_timings(read) == strip_timings(make_entry())

    def test_is_append_only(self, tmp_path):
        ledger = PerfLedger(tmp_path)
        ledger.append(make_entry(version="1.0.0"))
        first_line = ledger.path.read_text().splitlines()[0]
        ledger.append(make_entry(version="1.1.0"))
        assert ledger.path.read_text().splitlines()[0] == first_line
        assert len(ledger) == 2

    def test_does_not_mutate_the_caller_entry(self, tmp_path):
        entry = make_entry()
        PerfLedger(tmp_path).append(entry)
        assert "recorded_at" not in entry["timings"]

    def test_rejects_non_perf_case_payloads(self, tmp_path):
        ledger = PerfLedger(tmp_path)
        with pytest.raises(ValueError, match="perf-case"):
            ledger.append({"kind": "trace", "case": "tiny"})
        with pytest.raises(ValueError, match="perf-case"):
            ledger.append(make_entry(case=""))


class TestEntries:
    def test_empty_ledger_reads_as_no_entries(self, tmp_path):
        ledger = PerfLedger(tmp_path / "never-written")
        assert ledger.entries() == []
        assert ledger.cases() == []
        assert ledger.latest("tiny") is None

    def test_filters_by_every_key_axis(self, tmp_path):
        ledger = PerfLedger(tmp_path)
        ledger.append(make_entry(case="a", fingerprint="x", version="1"))
        ledger.append(make_entry(case="a", fingerprint="y", version="2"))
        ledger.append(make_entry(case="b", fingerprint="x", version="2"))
        assert len(ledger.entries(case="a")) == 2
        assert len(ledger.entries(fingerprint="x")) == 2
        assert len(ledger.entries(package_version="2")) == 2
        assert len(ledger.entries(case="a", fingerprint="x")) == 1

    def test_cases_preserve_first_appended_order(self, tmp_path):
        ledger = PerfLedger(tmp_path)
        for case in ("zeta", "alpha", "zeta"):
            ledger.append(make_entry(case=case))
        assert ledger.cases() == ["zeta", "alpha"]

    def test_latest_returns_the_last_matching_line(self, tmp_path):
        ledger = PerfLedger(tmp_path)
        ledger.append(make_entry(version="1.0.0"))
        ledger.append(make_entry(version="1.1.0"))
        assert ledger.latest("tiny")["package_version"] == "1.1.0"
        assert ledger.latest("tiny", package_version="1.0.0")[
            "package_version"
        ] == "1.0.0"

    def test_rejects_newer_schema_lines_with_location(self, tmp_path):
        ledger = PerfLedger(tmp_path)
        ledger.append(make_entry())
        with ledger.path.open("a") as handle:
            handle.write(json.dumps(make_entry(schema=PERF_SCHEMA + 1)) + "\n")
        with pytest.raises(ValueError, match=r"perf\.jsonl:2.*newer"):
            ledger.entries()

    def test_rejects_corrupt_lines_with_location(self, tmp_path):
        ledger = PerfLedger(tmp_path)
        ledger.append(make_entry())
        with ledger.path.open("a") as handle:
            handle.write("{not json\n")
        with pytest.raises(ValueError, match=r"perf\.jsonl:2.*corrupt"):
            ledger.entries()

    def test_blank_lines_are_skipped(self, tmp_path):
        ledger = PerfLedger(tmp_path)
        ledger.append(make_entry())
        with ledger.path.open("a") as handle:
            handle.write("\n")
        ledger.append(make_entry())
        assert len(ledger) == 2
