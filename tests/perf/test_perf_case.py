"""Unit tests for the PerfCase registry and the run_case entry builder."""

import json

import pytest

from repro.obs import METRICS, strip_timings
from repro.perf.case import (
    CASE_REGISTRY,
    PERF_SCHEMA,
    CaseCheck,
    CaseOutcome,
    PerfCase,
    available_cases,
    register_case,
    resolve_cases,
    run_case,
    timing_stats,
)


class TinyCase(PerfCase):
    """Deterministic stub: fixed span counters, a METRICS count, one check."""

    name = "tiny"
    description = "test stub"
    repeats = 2

    def fingerprint(self):
        return "feedc0de"

    def run_once(self, tracer):
        with tracer.span("work") as span:
            span.count("widgets", 3)
            with tracer.span("inner") as inner:
                inner.count("widgets", 1)
        METRICS.count("tiny.things", 2)
        outcome = CaseOutcome()
        outcome.counters["extra"] = 5
        outcome.timings["phase_s"] = 0.001
        outcome.checks.append(CaseCheck(name="always", ok=True, detail="fine"))
        outcome.checks.append(
            CaseCheck(name="floor", ok=True, detail="fast enough", timing=True)
        )
        return outcome


class WobblyCase(TinyCase):
    """Counters that differ between repeats -- must fail the built-in check."""

    name = "wobbly"

    def __init__(self):
        self.calls = 0

    def run_once(self, tracer):
        self.calls += 1
        outcome = super().run_once(tracer)
        outcome.counters["extra"] = self.calls
        return outcome


class TestRegistry:
    def test_built_in_cases_are_registered(self):
        assert {"evaluator", "variation", "service", "propagation", "trace"} <= set(
            available_cases()
        )

    def test_register_requires_a_name(self, monkeypatch):
        monkeypatch.setattr("repro.perf.case.CASE_REGISTRY", {})

        with pytest.raises(ValueError, match="non-empty 'name'"):

            @register_case
            class Nameless(PerfCase):
                pass

    def test_register_rejects_duplicates(self, monkeypatch):
        monkeypatch.setattr("repro.perf.case.CASE_REGISTRY", {"tiny": TinyCase})
        with pytest.raises(ValueError, match="already registered"):
            register_case(TinyCase)

    def test_resolve_unknown_name_lists_the_registry(self):
        with pytest.raises(KeyError, match="unknown perf case"):
            resolve_cases(["no-such-case"])

    def test_resolve_default_is_every_case_sorted(self, monkeypatch):
        monkeypatch.setattr(
            "repro.perf.case.CASE_REGISTRY",
            {"b": TinyCase, "a": TinyCase},
        )
        assert [type(c).name for c in resolve_cases()] == ["tiny", "tiny"]


class TestTimingStats:
    def test_median_and_iqr_of_a_known_series(self):
        stats = timing_stats([4.0, 1.0, 2.0, 3.0])
        assert stats["n"] == 4
        assert stats["median"] == pytest.approx(2.5)
        assert stats["iqr"] == pytest.approx(1.5)  # q75=3.25, q25=1.75
        assert stats["min"] == 1.0 and stats["max"] == 4.0

    def test_single_sample_has_zero_iqr(self):
        stats = timing_stats([0.25])
        assert stats["median"] == 0.25
        assert stats["iqr"] == 0.0

    def test_empty_series_is_all_zero(self):
        assert timing_stats([])["median"] == 0.0


class TestRunCase:
    def test_entry_shape_and_counter_sources(self):
        entry = run_case(TinyCase(), package_version="1.2.3")
        assert entry["schema"] == PERF_SCHEMA
        assert entry["kind"] == "perf-case"
        assert entry["case"] == "tiny"
        assert entry["package_version"] == "1.2.3"
        assert entry["fingerprint"] == "feedc0de"
        # Merged counters: span counters + METRICS counters + case counters.
        assert entry["counters"]["widgets"] == 4
        assert entry["counters"]["tiny.things"] == 2
        assert entry["counters"]["extra"] == 5
        # Per-path counters keep the tree structure.
        assert entry["span_counters"]["work"] == {"widgets": 3}
        assert entry["span_counters"]["work/inner"] == {"widgets": 1}
        # The timing quarantine: repeats, wall clock, spans, extra, checks.
        timings = entry["timings"]
        assert timings["repeats"] == 2
        assert timings["wall_clock_s"]["n"] == 2
        assert timings["extra"]["phase_s"]["median"] == pytest.approx(0.001)
        assert [c["name"] for c in timings["checks"]] == ["floor"]
        assert [c["name"] for c in entry["checks"]] == [
            "always",
            "counters_deterministic",
        ]
        assert all(c["ok"] for c in entry["checks"])

    def test_metrics_do_not_leak_between_repeats_or_after(self):
        run_case(TinyCase())
        # Reset per repeat: the counter block shows one repeat's worth...
        entry = run_case(TinyCase())
        assert entry["counters"]["tiny.things"] == 2
        # ...and run_case leaves the global registry clean.
        assert METRICS.snapshot()["counters"] == {}

    def test_nondeterministic_counters_fail_the_built_in_check(self):
        entry = run_case(WobblyCase())
        checks = {c["name"]: c for c in entry["checks"]}
        assert not checks["counters_deterministic"]["ok"]

    def test_deterministic_remainder_is_byte_identical_across_runs(self):
        one = json.dumps(strip_timings(run_case(TinyCase())), sort_keys=True)
        two = json.dumps(strip_timings(run_case(TinyCase())), sort_keys=True)
        assert one == two

    def test_repeats_override_is_clamped_to_one(self):
        entry = run_case(TinyCase(), repeats=0)
        assert entry["timings"]["repeats"] == 1

    def test_registry_holds_classes_not_instances(self):
        for name in available_cases():
            assert isinstance(CASE_REGISTRY[name], type)
