"""Tests for run diffing and regression detection (repro.store.compare)."""

import pytest

from repro.runner import render_table
from repro.store import (
    COMPARE_COLUMNS,
    CompareTolerances,
    compare_rows,
    diff_records,
    record_key,
)


def record(instance="ti:30", flow="contango", engine="elmore", skew=1.0, clr=2.0,
           evals=10, wall=0.1, fingerprint="fp", pipeline=None, seed=None):
    return {
        "instance": instance,
        "flow": flow,
        "engine": engine,
        "pipeline": pipeline,
        "seed": seed,
        "fingerprint": fingerprint,
        "summary": {"skew_ps": skew, "clr_ps": clr, "evaluations": evals},
        "wall_clock_s": wall,
    }


class TestRecordKey:
    def test_key_ignores_fingerprint_and_metrics(self):
        assert record_key(record(skew=1.0, fingerprint="a")) == record_key(
            record(skew=9.0, fingerprint="b")
        )

    def test_key_distinguishes_axes(self):
        base = record_key(record())
        assert record_key(record(flow="bounded_skew")) != base
        assert record_key(record(seed=3)) != base
        assert record_key(record(pipeline=["initial"])) != base


class TestDiff:
    def test_matched_pair_produces_deltas(self):
        result = diff_records(
            [record(skew=1.0, clr=2.0, evals=10, wall=0.1)],
            [record(skew=1.5, clr=2.2, evals=12, wall=0.3)],
        )
        (row,) = result.rows
        assert row.d_skew_ps == pytest.approx(0.5)
        assert row.d_clr_ps == pytest.approx(0.2)
        assert row.d_evaluations == 2
        assert row.d_wall_clock_s == pytest.approx(0.2)

    def test_regression_flags_respect_tolerances(self):
        base = [record(skew=1.0, clr=2.0)]
        within = diff_records(base, [record(skew=1.04, clr=2.0)])
        assert not within.rows[0].regressed
        beyond = diff_records(base, [record(skew=1.5, clr=2.0)])
        assert beyond.rows[0].regressed
        clr = diff_records(base, [record(skew=1.0, clr=2.5)])
        assert clr.rows[0].regressed

    def test_improvement_never_regresses(self):
        result = diff_records([record(skew=5.0, clr=9.0)], [record(skew=1.0, clr=2.0)])
        assert not result.rows[0].regressed

    def test_evaluations_gate_only_when_enabled(self):
        base = [record(evals=10)]
        cand = [record(evals=20)]
        assert not diff_records(base, cand).rows[0].regressed
        gated = diff_records(base, cand, CompareTolerances(evaluations=5))
        assert gated.rows[0].regressed

    def test_unmatched_jobs_reported(self):
        result = diff_records(
            [record(instance="ti:30"), record(instance="ti:60")],
            [record(instance="ti:30"), record(instance="scenario:maze")],
        )
        assert len(result.rows) == 1
        assert [r.instance for r in result.only_baseline] == ["ti:60"]
        assert [r.instance for r in result.only_candidate] == ["scenario:maze"]

    def test_error_records_never_match(self):
        broken = {"instance": "ti:30", "flow": "contango", "engine": "elmore",
                  "error": "boom"}
        result = diff_records([record()], [broken])
        assert not result.rows
        assert len(result.only_baseline) == 1
        # The failed candidate job is accounted for, not silently dropped.
        assert [r.instance for r in result.candidate_failures] == ["ti:30"]
        assert not result.baseline_failures

    def test_duplicate_keys_keep_latest(self):
        result = diff_records(
            [record(skew=1.0), record(skew=3.0)], [record(skew=3.0)]
        )
        (row,) = result.rows
        assert row.d_skew_ps == 0.0

    def test_fingerprint_change_detected(self):
        same = diff_records([record(fingerprint="a")], [record(fingerprint="a")])
        assert not same.rows[0].fingerprint_changed
        changed = diff_records([record(fingerprint="a")], [record(fingerprint="b")])
        assert changed.rows[0].fingerprint_changed
        legacy = diff_records([record(fingerprint=None)], [record(fingerprint=None)])
        assert legacy.rows[0].fingerprint_changed


class TestRendering:
    def test_compare_rows_render_through_render_table(self):
        result = diff_records(
            [record(skew=1.0)], [record(skew=9.0, fingerprint="other")]
        )
        rendered = render_table(compare_rows(result), COMPARE_COLUMNS)
        assert "d skew[ps]" in rendered
        assert "+8.00" in rendered
        assert "REG fp!" in rendered
        # The engine axis is part of the match key, so multi-engine sweeps
        # need it in the table to disambiguate otherwise-identical rows.
        assert "engine" in rendered
        assert "elmore" in rendered

    def test_clean_rows_have_empty_flag(self):
        result = diff_records([record()], [record()])
        assert compare_rows(result)[0]["flag"] == ""
