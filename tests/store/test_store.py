"""Tests for the append-only run store (repro.store.store)."""

import json

import pytest

from repro.store import STORE_SCHEMA_VERSION, RunStore


def record(instance="ti:30", flow="contango", engine="elmore", skew=1.0, **extra):
    payload = {
        "job": f"{instance}-{flow}-{engine}".replace(":", "-"),
        "instance": instance,
        "flow": flow,
        "engine": engine,
        "pipeline": None,
        "seed": None,
        "fingerprint": f"fp-{instance}-{flow}-{engine}-{skew}",
        "summary": {"skew_ps": skew, "clr_ps": 2 * skew, "evaluations": 10},
        "wall_clock_s": 0.1,
    }
    payload.update(extra)
    return payload


class TestAppend:
    def test_append_creates_directory_and_file(self, tmp_path):
        store = RunStore(tmp_path / "store")
        envelope = store.append(record(), run_id="r1")
        assert store.path.exists()
        assert envelope["schema"] == STORE_SCHEMA_VERSION
        assert envelope["run_id"] == "r1"
        assert envelope["recorded_at"].startswith("20")
        assert envelope["fingerprint"] == record()["fingerprint"]

    def test_append_is_append_only(self, tmp_path):
        store = RunStore(tmp_path)
        store.append(record(skew=1.0), run_id="r1")
        first = store.path.read_text()
        store.append(record(skew=2.0), run_id="r2")
        assert store.path.read_text().startswith(first)
        assert len(store) == 2

    def test_error_records_store_null_fingerprint(self, tmp_path):
        store = RunStore(tmp_path)
        envelope = store.append(
            {"job": "x", "instance": "nope:1", "flow": "contango",
             "engine": "elmore", "error": "boom"},
            run_id="r1",
        )
        assert envelope["fingerprint"] is None

    @pytest.mark.parametrize(
        "bad",
        ["", "has space", "tab\tid",
         # '@' and 'all' are reserved by the STORE[@RUN_ID] compare syntax:
         "v1@final", "all"],
    )
    def test_bad_run_ids_rejected(self, tmp_path, bad):
        with pytest.raises(ValueError, match="run_id"):
            RunStore(tmp_path).append(record(), run_id=bad)


class TestQuery:
    def make(self, tmp_path):
        store = RunStore(tmp_path)
        store.append(record(instance="ti:30", flow="contango"), run_id="base")
        store.append(record(instance="ti:30", flow="unoptimized_dme"), run_id="base")
        store.append(record(instance="scenario:maze", flow="contango"), run_id="cand")
        return store

    def test_entries_preserve_append_order(self, tmp_path):
        store = self.make(tmp_path)
        flows = [e["record"]["flow"] for e in store.entries()]
        assert flows == ["contango", "unoptimized_dme", "contango"]

    def test_filter_by_run_id(self, tmp_path):
        store = self.make(tmp_path)
        assert len(store.records(run_id="base")) == 2
        assert len(store.records(run_id="cand")) == 1
        assert store.records(run_id="nope") == []

    def test_filter_by_axes(self, tmp_path):
        store = self.make(tmp_path)
        assert len(store.records(flow="contango")) == 2
        assert len(store.records(instance="scenario:maze")) == 1
        assert len(store.records(run_id="base", flow="contango")) == 1

    def test_run_ids_in_first_seen_order(self, tmp_path):
        store = self.make(tmp_path)
        assert store.run_ids() == ["base", "cand"]
        assert store.latest_run_id() == "cand"

    def test_empty_store_reads_empty(self, tmp_path):
        store = RunStore(tmp_path / "missing")
        assert store.entries() == []
        assert store.latest_run_id() is None
        assert len(store) == 0


class TestSchema:
    def test_newer_schema_rejected(self, tmp_path):
        store = RunStore(tmp_path)
        store.append(record(), run_id="r1")
        line = json.dumps(
            {"schema": STORE_SCHEMA_VERSION + 1, "run_id": "r2", "record": {}}
        )
        with store.path.open("a") as handle:
            handle.write(line + "\n")
        with pytest.raises(ValueError, match="newer than supported"):
            store.entries()

    def test_corrupt_line_reports_location(self, tmp_path):
        store = RunStore(tmp_path)
        store.append(record(), run_id="r1")
        with store.path.open("a") as handle:
            handle.write("{not json\n")
        with pytest.raises(ValueError, match="runs.jsonl:2"):
            store.entries()

    def test_blank_lines_ignored(self, tmp_path):
        store = RunStore(tmp_path)
        store.append(record(), run_id="r1")
        with store.path.open("a") as handle:
            handle.write("\n\n")
        assert len(store.entries()) == 1
