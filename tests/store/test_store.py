"""Tests for the append-only run store (repro.store.store)."""

import json
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.store import STORE_SCHEMA_VERSION, RunStore


def record(instance="ti:30", flow="contango", engine="elmore", skew=1.0, **extra):
    payload = {
        "job": f"{instance}-{flow}-{engine}".replace(":", "-"),
        "instance": instance,
        "flow": flow,
        "engine": engine,
        "pipeline": None,
        "seed": None,
        "fingerprint": f"fp-{instance}-{flow}-{engine}-{skew}",
        "summary": {"skew_ps": skew, "clr_ps": 2 * skew, "evaluations": 10},
        "wall_clock_s": 0.1,
    }
    payload.update(extra)
    return payload


class TestAppend:
    def test_append_creates_directory_and_file(self, tmp_path):
        store = RunStore(tmp_path / "store")
        envelope = store.append(record(), run_id="r1")
        assert store.path.exists()
        assert envelope["schema"] == STORE_SCHEMA_VERSION
        assert envelope["run_id"] == "r1"
        assert envelope["recorded_at"].startswith("20")
        assert envelope["fingerprint"] == record()["fingerprint"]

    def test_append_is_append_only(self, tmp_path):
        store = RunStore(tmp_path)
        store.append(record(skew=1.0), run_id="r1")
        first = store.path.read_text()
        store.append(record(skew=2.0), run_id="r2")
        assert store.path.read_text().startswith(first)
        assert len(store) == 2

    def test_error_records_store_null_fingerprint(self, tmp_path):
        store = RunStore(tmp_path)
        envelope = store.append(
            {"job": "x", "instance": "nope:1", "flow": "contango",
             "engine": "elmore", "error": "boom"},
            run_id="r1",
        )
        assert envelope["fingerprint"] is None

    @pytest.mark.parametrize(
        "bad",
        ["", "has space", "tab\tid",
         # '@' and 'all' are reserved by the STORE[@RUN_ID] compare syntax:
         "v1@final", "all"],
    )
    def test_bad_run_ids_rejected(self, tmp_path, bad):
        with pytest.raises(ValueError, match="run_id"):
            RunStore(tmp_path).append(record(), run_id=bad)


class TestQuery:
    def make(self, tmp_path):
        store = RunStore(tmp_path)
        store.append(record(instance="ti:30", flow="contango"), run_id="base")
        store.append(record(instance="ti:30", flow="unoptimized_dme"), run_id="base")
        store.append(record(instance="scenario:maze", flow="contango"), run_id="cand")
        return store

    def test_entries_preserve_append_order(self, tmp_path):
        store = self.make(tmp_path)
        flows = [e["record"]["flow"] for e in store.entries()]
        assert flows == ["contango", "unoptimized_dme", "contango"]

    def test_filter_by_run_id(self, tmp_path):
        store = self.make(tmp_path)
        assert len(store.records(run_id="base")) == 2
        assert len(store.records(run_id="cand")) == 1
        assert store.records(run_id="nope") == []

    def test_filter_by_axes(self, tmp_path):
        store = self.make(tmp_path)
        assert len(store.records(flow="contango")) == 2
        assert len(store.records(instance="scenario:maze")) == 1
        assert len(store.records(run_id="base", flow="contango")) == 1

    def test_run_ids_in_first_seen_order(self, tmp_path):
        store = self.make(tmp_path)
        assert store.run_ids() == ["base", "cand"]
        assert store.latest_run_id() == "cand"

    def test_empty_store_reads_empty(self, tmp_path):
        store = RunStore(tmp_path / "missing")
        assert store.entries() == []
        assert store.latest_run_id() is None
        assert len(store) == 0


class TestSchema:
    def test_newer_schema_rejected(self, tmp_path):
        store = RunStore(tmp_path)
        store.append(record(), run_id="r1")
        line = json.dumps(
            {"schema": STORE_SCHEMA_VERSION + 1, "run_id": "r2", "record": {}}
        )
        with store.path.open("a") as handle:
            handle.write(line + "\n")
        with pytest.raises(ValueError, match="newer than supported"):
            store.entries()

    def test_corrupt_line_reports_location(self, tmp_path):
        store = RunStore(tmp_path)
        store.append(record(), run_id="r1")
        with store.path.open("a") as handle:
            handle.write("{not json\n")
        with pytest.raises(ValueError, match="runs.jsonl:2"):
            store.entries()

    def test_blank_lines_ignored(self, tmp_path):
        store = RunStore(tmp_path)
        store.append(record(), run_id="r1")
        with store.path.open("a") as handle:
            handle.write("\n\n")
        assert len(store.entries()) == 1


class TestFingerprintIndex:
    """latest_by_fingerprint: the serve cache's O(1) store lookup."""

    @staticmethod
    def latest_linear(store, fingerprint):
        """The reference semantics: scan the envelopes backwards."""
        for envelope in reversed(store.entries()):
            if envelope.get("fingerprint") == fingerprint:
                return envelope["record"]
        return None

    def test_empty_store_and_unknown_fingerprint_miss(self, tmp_path):
        store = RunStore(tmp_path)
        assert store.latest_by_fingerprint("fp-x") is None
        store.append(record(), run_id="r1")
        assert store.latest_by_fingerprint("fp-x") is None

    def test_duplicate_fingerprints_resolve_to_the_latest_append(self, tmp_path):
        store = RunStore(tmp_path)
        store.append(record(skew=1.0, fingerprint="fp-dup"), run_id="r1")
        store.append(record(skew=2.0, fingerprint="fp-dup"), run_id="r2")
        found = store.latest_by_fingerprint("fp-dup")
        assert found["summary"]["skew_ps"] == 2.0

    def test_index_extends_in_place_on_same_handle_appends(self, tmp_path):
        store = RunStore(tmp_path)
        store.append(record(fingerprint="fp-1"), run_id="r1")
        assert store.latest_by_fingerprint("fp-1") is not None  # index built
        store.append(record(fingerprint="fp-2"), run_id="r1")
        assert store.latest_by_fingerprint("fp-2") is not None

    def test_null_fingerprint_error_records_are_never_indexed(self, tmp_path):
        store = RunStore(tmp_path)
        store.append(record(fingerprint=None), run_id="r1")
        store.append(record(fingerprint="fp-ok"), run_id="r1")
        assert store.latest_by_fingerprint("fp-ok") is not None
        assert store.latest_by_fingerprint("None") is None

    def test_out_of_band_appends_are_detected_by_file_growth(self, tmp_path):
        primary = RunStore(tmp_path)
        primary.append(record(fingerprint="fp-1"), run_id="r1")
        assert primary.latest_by_fingerprint("fp-2") is None  # index built
        # A second handle (another process in real life) appends behind the
        # primary's back: the index must not serve a stale miss.
        RunStore(tmp_path).append(record(fingerprint="fp-2"), run_id="r2")
        assert primary.latest_by_fingerprint("fp-2") is not None

    @given(
        ops=st.lists(
            st.tuples(
                st.booleans(),  # append through the primary or a second handle
                st.sampled_from(["fp-a", "fp-b", "fp-c", None]),
            ),
            max_size=25,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_index_matches_linear_scan_under_interleaved_appends(self, ops):
        with tempfile.TemporaryDirectory() as root:
            primary = RunStore(root)
            other = RunStore(root)
            for serial, (use_primary, fingerprint) in enumerate(ops):
                handle = primary if use_primary else other
                handle.append(
                    record(skew=float(serial), fingerprint=fingerprint),
                    run_id="r1",
                )
                # Query mid-sequence so both index paths run: in-place
                # extension (primary appends) and growth-triggered rebuilds
                # (appends behind the primary's back).
                for probe in ("fp-a", "fp-b", "fp-c", "fp-missing"):
                    assert primary.latest_by_fingerprint(
                        probe
                    ) == self.latest_linear(primary, probe)
