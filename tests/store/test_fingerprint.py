"""Tests for content-addressed run fingerprints (repro.store.fingerprint)."""

from repro.core import FlowConfig
from repro.runner import JobSpec, run_job
from repro.store import canonical_json, config_digest, job_fingerprint


class TestCanonicalJson:
    def test_key_order_is_canonical(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})

    def test_dataclasses_and_numpy_are_jsonable(self):
        import numpy as np

        text = canonical_json(
            {"cfg": FlowConfig(), "x": np.float64(1.5), "n": np.int64(3),
             "arr": np.arange(2)}
        )
        assert '"engine":"spice"' in text
        assert '"x":1.5' in text


class TestConfigDigest:
    def test_equal_configs_digest_equal(self):
        assert config_digest(FlowConfig()) == config_digest(FlowConfig())

    def test_any_knob_changes_the_digest(self):
        base = config_digest(FlowConfig())
        assert config_digest(FlowConfig(engine="arnoldi")) != base
        assert config_digest(FlowConfig(sizing_max_rejections=1)) != base
        assert config_digest(FlowConfig(pipeline=["initial"])) != base


class TestJobFingerprint:
    def kwargs(self, **overrides):
        base = dict(
            instance_fingerprint="abc",
            flow="contango",
            engine="arnoldi",
            pipeline=None,
            seed=None,
            config_digest="cfg",
        )
        base.update(overrides)
        return base

    def test_stable_for_equal_inputs(self):
        assert job_fingerprint(**self.kwargs()) == job_fingerprint(**self.kwargs())

    def test_sensitive_to_every_component(self):
        base = job_fingerprint(**self.kwargs())
        for change in (
            {"instance_fingerprint": "xyz"},
            {"flow": "bounded_skew"},
            {"engine": "elmore"},
            {"pipeline": ["initial"]},
            {"seed": 3},
            {"config_digest": "other"},
        ):
            assert job_fingerprint(**self.kwargs(**change)) != base


class TestRunnerIntegration:
    def test_run_job_records_are_content_addressed(self):
        a = run_job(JobSpec(instance="ti:20", engine="elmore"))
        b = run_job(JobSpec(instance="ti:20", engine="elmore"))
        assert a.fingerprint == b.fingerprint
        assert a.instance_fingerprint == b.instance_fingerprint
        assert a.config_digest == b.config_digest

    def test_seed_changes_job_fingerprint_via_instance_content(self):
        a = run_job(JobSpec(instance="ti:20", engine="elmore"))
        b = run_job(JobSpec(instance="ti:20", engine="elmore", seed=11))
        assert a.fingerprint != b.fingerprint
        assert a.instance_fingerprint != b.instance_fingerprint
