"""End-to-end tests for ``repro sweep`` and ``repro compare``."""

import json

import pytest

from repro.cli import main
from repro.store import RunStore


def run_sweep(tmp_path, run_id, extra=()):
    return main(
        [
            "sweep",
            "--family", "banks",
            "--set", "sinks=16",
            "--sweep", "clusters=2,4",
            "--instance", "ti:20",
            "--engine", "elmore",
            "--store", str(tmp_path / "store"),
            "--run-id", run_id,
            *extra,
        ]
    )


class TestSweep:
    def test_sweep_streams_into_store(self, tmp_path, capsys):
        assert run_sweep(tmp_path, "base") == 0
        store = RunStore(tmp_path / "store")
        records = store.records(run_id="base")
        assert [r["instance"] for r in records] == [
            "scenario:banks:clusters=2,sinks=16",
            "scenario:banks:clusters=4,sinks=16",
            "ti:20",
        ]
        assert all(r["fingerprint"] for r in records)
        printed = capsys.readouterr().out
        assert "stored 3 record(s) under run id 'base'" in printed
        assert "CLR[ps]" in printed

    def test_sweep_appends_across_runs(self, tmp_path, capsys):
        run_sweep(tmp_path, "base")
        run_sweep(tmp_path, "cand")
        store = RunStore(tmp_path / "store")
        assert store.run_ids() == ["base", "cand"]
        assert len(store) == 6

    def test_sweep_requires_store_and_target(self, tmp_path, capsys):
        assert main(["sweep", "--family", "banks"]) == 2
        assert "--store" in capsys.readouterr().err
        assert main(["sweep", "--store", str(tmp_path)]) == 2
        assert "--family" in capsys.readouterr().err

    def test_sweep_rejects_unknown_family_and_params(self, tmp_path, capsys):
        args = ["sweep", "--store", str(tmp_path)]
        assert main(args + ["--family", "nope"]) == 2
        assert "unknown scenario family" in capsys.readouterr().err
        assert main(args + ["--family", "banks", "--sweep", "frobs=1,2"]) == 2
        assert "no parameter" in capsys.readouterr().err
        assert main(args + ["--family", "banks", "--set", "sinks"]) == 2
        assert "K=V" in capsys.readouterr().err

    def test_bad_run_id_fails_fast_before_any_job_runs(self, tmp_path, capsys):
        code = main(
            ["sweep", "--family", "banks", "--set", "sinks=16",
             "--store", str(tmp_path / "s"), "--run-id", "nightly run"]
        )
        assert code == 2
        assert "run_id" in capsys.readouterr().err
        assert not (tmp_path / "s").exists()  # nothing synthesized or stored

    def test_set_and_sweep_conflict_rejected(self, tmp_path, capsys):
        code = main(
            ["sweep", "--family", "banks", "--set", "clusters=4",
             "--sweep", "clusters=8,16", "--store", str(tmp_path / "s")]
        )
        assert code == 2
        assert "both fixed and swept" in capsys.readouterr().err

    def test_list_families_standalone(self, capsys):
        assert main(["sweep", "--list-families"]) == 0
        printed = capsys.readouterr().out
        for name in ("maze", "macros", "strip", "banks"):
            assert name in printed
        assert "sinks" in printed

    def test_failed_job_still_stored_and_exits_nonzero(self, tmp_path, capsys):
        code = main(
            ["sweep", "--instance", "nope:1", "--store", str(tmp_path / "s"),
             "--run-id", "r"]
        )
        assert code == 1
        (record,) = RunStore(tmp_path / "s").records()
        assert "error" in record


class TestCompare:
    def test_identical_runs_compare_clean(self, tmp_path, capsys):
        run_sweep(tmp_path, "base")
        run_sweep(tmp_path, "cand")
        capsys.readouterr()
        store = str(tmp_path / "store")
        code = main(
            ["compare", f"{store}@base", f"{store}@cand", "--fail-on-regression"]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "3 matched job(s), 0 regression(s)" in printed
        assert "d skew[ps]" in printed

    def test_default_selection_is_latest_run(self, tmp_path, capsys):
        run_sweep(tmp_path, "base")
        run_sweep(tmp_path, "cand")
        capsys.readouterr()
        store = str(tmp_path / "store")
        assert main(["compare", f"{store}@base", store]) == 0
        assert "3 matched job(s)" in capsys.readouterr().out

    def test_regression_detected_and_gated(self, tmp_path, capsys):
        run_sweep(tmp_path, "base")
        store = RunStore(tmp_path / "store")
        for envelope in store.entries(run_id="base"):
            record = dict(envelope["record"])
            record["summary"] = dict(record["summary"])
            record["summary"]["skew_ps"] += 5.0
            store.append(record, run_id="worse")
        capsys.readouterr()
        path = str(tmp_path / "store")
        code = main(
            ["compare", f"{path}@base", f"{path}@worse", "--fail-on-regression"]
        )
        assert code == 1
        out = capsys.readouterr()
        assert "3 regression(s)" in out.out
        assert "REGRESSION" in out.err
        # Without the gate the same diff only reports.
        assert main(["compare", f"{path}@base", f"{path}@worse"]) == 0

    def test_store_path_containing_at_sign_is_addressable(self, tmp_path, capsys):
        at_dir = tmp_path / "artifacts@v2"
        code = main(
            ["sweep", "--instance", "ti:16", "--engine", "elmore",
             "--store", str(at_dir / "store"), "--run-id", "base"]
        )
        assert code == 0
        capsys.readouterr()
        # Bare path (run id defaults to latest) and explicit @RUN_ID both work.
        assert main(["compare", str(at_dir / "store"), f"{at_dir / 'store'}@base"]) == 0
        assert "1 matched job(s)" in capsys.readouterr().out

    def test_missing_store_or_run_errors_clearly(self, tmp_path, capsys):
        run_sweep(tmp_path, "base")
        store = str(tmp_path / "store")
        assert main(["compare", store, str(tmp_path / "missing")]) == 2
        assert "no run store" in capsys.readouterr().err
        assert main(["compare", f"{store}@nope", store]) == 2
        assert "matches nothing" in capsys.readouterr().err

    def test_missing_baseline_jobs_fail_the_gate(self, tmp_path, capsys):
        run_sweep(tmp_path, "base")
        # Candidate re-validates only a subset of the baseline matrix.
        code = main(
            ["sweep", "--instance", "ti:20", "--engine", "elmore",
             "--store", str(tmp_path / "store"), "--run-id", "partial"]
        )
        assert code == 0
        capsys.readouterr()
        store = str(tmp_path / "store")
        code = main(
            ["compare", f"{store}@base", f"{store}@partial", "--fail-on-regression"]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert "missing from the candidate" in err
        assert "scenario:banks" in err
        # Without the gate the partial diff still renders and exits 0.
        assert main(["compare", f"{store}@base", f"{store}@partial"]) == 0

    def test_empty_overlap_fails_the_gate(self, tmp_path, capsys):
        run_sweep(tmp_path, "base")
        other = RunStore(tmp_path / "other")
        other.append(
            {"instance": "ti:999", "flow": "contango", "engine": "elmore",
             "summary": {"skew_ps": 1.0, "clr_ps": 1.0, "evaluations": 1},
             "fingerprint": "x"},
            run_id="r",
        )
        code = main(
            ["compare", str(tmp_path / "store"), str(tmp_path / "other"),
             "--fail-on-regression"]
        )
        assert code == 1
        assert "no matched jobs" in capsys.readouterr().err
