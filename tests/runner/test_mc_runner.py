"""Tests for Monte Carlo runner jobs and the ``repro mc`` subcommand."""

import json

import pytest

from repro.cli import main
from repro.runner import (
    BatchRunner,
    McJobSpec,
    run_mc_job,
    run_mc_job_guarded,
    table_mc,
    variation_model_for,
)
from repro.core import FlowConfig


class TestMcJobSpec:
    def test_label_is_filesystem_safe_and_descriptive(self):
        spec = McJobSpec(instance="ispd09:ispd09f22:0.1", samples=500, gated=True)
        assert ":" not in spec.label
        assert "mc500" in spec.label
        assert "gated" in spec.label

    def test_validation(self):
        with pytest.raises(ValueError, match="samples"):
            McJobSpec(instance="ti:30", samples=0)
        with pytest.raises(ValueError, match="family"):
            McJobSpec(instance="ti:30", family="magic")
        with pytest.raises(ValueError, match="analytical"):
            McJobSpec(instance="ti:30", engine="spice")

    def test_gated_requires_contango_without_pipeline_override(self):
        # A silently ungated record claiming gated=True would poison
        # gated-vs-ungated ablation comparisons.
        with pytest.raises(ValueError, match="not available for flow"):
            McJobSpec(instance="ti:30", flow="unoptimized_dme", gated=True)
        with pytest.raises(ValueError, match="mutually exclusive"):
            McJobSpec(instance="ti:30", gated=True, pipeline=("initial",))

    def test_variation_model_for_families(self):
        config = FlowConfig()
        anchored = variation_model_for(
            McJobSpec(instance="ti:30", family="corner_anchored"), config
        )
        assert anchored.family == "corner_anchored"
        assert {a.name for a in anchored.anchors} == {c.name for c in config.corners}
        independent = variation_model_for(McJobSpec(instance="ti:30"), config)
        assert independent.family == "independent"


class TestRunMcJob:
    def test_record_is_json_serializable_and_complete(self):
        record = run_mc_job(McJobSpec(instance="ti:30", samples=64, seed=3))
        json.dumps(record.to_record())  # must not raise
        assert record.sinks == 30
        assert record.yield_.n_samples == 64
        assert 0.0 <= record.yield_.skew_yield <= 1.0
        assert record.nominal.flow == "contango"
        assert record.wall_clock_s > 0.0

    def test_same_seed_is_bit_reproducible_and_seeds_differ(self):
        a = run_mc_job(McJobSpec(instance="ti:30", samples=64, seed=3))
        b = run_mc_job(McJobSpec(instance="ti:30", samples=64, seed=3))
        c = run_mc_job(McJobSpec(instance="ti:30", samples=64, seed=4))
        assert a.yield_ == b.yield_
        assert a.yield_ != c.yield_

    def test_seed_does_not_change_the_instance_or_nominal_flow(self):
        a = run_mc_job(McJobSpec(instance="ti:30", samples=16, seed=3))
        b = run_mc_job(McJobSpec(instance="ti:30", samples=16, seed=4))
        assert a.nominal.skew_ps == b.nominal.skew_ps
        assert a.nominal.wirelength_um == b.nominal.wirelength_um

    def test_gated_job_uses_variation_pipeline(self):
        record = run_mc_job(
            McJobSpec(instance="ti:30", samples=32, seed=3, gated=True)
        )
        assert record.gated is True
        assert record.variation_gate["checks"] >= 0
        assert record.variation_gate["reference_p95_ps"] is not None

    def test_gated_job_gates_against_the_requested_family(self):
        # The gate must screen the same distribution the job reports, not
        # silently fall back to the default independent model.
        record = run_mc_job(
            McJobSpec(
                instance="ti:30",
                samples=32,
                seed=3,
                gated=True,
                family="corner_anchored",
            )
        )
        assert record.variation_gate["model"]["family"] == "corner_anchored"
        assert record.yield_.model["family"] == "corner_anchored"

    def test_gate_samples_controls_gate_fidelity_only(self):
        record = run_mc_job(
            McJobSpec(
                instance="ti:30", samples=48, seed=3, gated=True, gate_samples=24
            )
        )
        assert record.variation_gate["samples"] == 24
        assert record.yield_.n_samples == 48
        with pytest.raises(ValueError, match="gate_samples"):
            McJobSpec(instance="ti:30", gated=True, gate_samples=1)

    def test_guarded_worker_reports_errors(self):
        record = run_mc_job_guarded(McJobSpec(instance="nope:1", samples=8))
        assert record.error is not None
        assert "unknown instance spec" in record.error
        # The failure envelope keeps the job-identity axes for compare.
        assert record.samples == 8
        assert record.seed == 7


class TestMcBatchAndTable:
    def jobs(self):
        return [
            McJobSpec(instance="ti:30", samples=32, seed=3),
            McJobSpec(instance="ti:30", samples=32, seed=3, family="corner_anchored"),
        ]

    def test_parallel_matches_serial_bit_for_bit(self):
        serial = BatchRunner(self.jobs(), max_workers=1, worker=run_mc_job_guarded).run()
        parallel = BatchRunner(self.jobs(), max_workers=2, worker=run_mc_job_guarded).run()
        assert [r.yield_ for r in serial.records] == [
            r.yield_ for r in parallel.records
        ]

    def test_table_mc_renders_yield_columns(self):
        batch = BatchRunner(self.jobs(), max_workers=1, worker=run_mc_job_guarded).run()
        rendered = table_mc(batch.records)
        assert "p95[ps]" in rendered
        assert "yield[%]" in rendered
        assert "corner_anchored" in rendered


class TestMcCli:
    def test_mc_streams_per_job_json_and_summary(self, tmp_path, capsys):
        out_dir = tmp_path / "mc"
        summary_path = tmp_path / "summary.json"
        code = main(
            [
                "mc",
                "--instance", "ti:30",
                "--samples", "32",
                "--samples", "64",
                "--seed", "3",
                "--jobs", "2",
                "--output-dir", str(out_dir),
                "--summary-json", str(summary_path),
            ]
        )
        assert code == 0
        per_job = sorted(p.name for p in out_dir.glob("*.json"))
        assert len(per_job) == 2
        summary = json.loads(summary_path.read_text())
        assert summary["jobs"] == 2
        assert {record["samples"] for record in summary["records"]} == {32, 64}
        printed = capsys.readouterr().out
        assert "yield[%]" in printed

    def test_mc_without_instance_fails_clearly(self, capsys):
        code = main(["mc"])
        assert code == 2
        assert "--instance" in capsys.readouterr().err

    def test_mc_propagates_job_failure_as_exit_code(self, capsys):
        code = main(["mc", "--instance", "nope:1", "--samples", "8"])
        assert code == 1

    def test_mc_invalid_spec_is_a_clean_cli_error(self, capsys):
        code = main(["mc", "--instance", "ti:30", "--samples", "0"])
        assert code == 2
        assert "samples" in capsys.readouterr().err
        code = main(
            ["mc", "--instance", "ti:30", "--flow", "unoptimized_dme", "--gated"]
        )
        assert code == 2
        assert "gated" in capsys.readouterr().err.lower()
