"""Tests for the batch runner and the ``python -m repro`` CLI."""

import json
import os

import pytest

from repro.cli import main
from repro.runner import (
    BatchRunner,
    JobSpec,
    McJobSpec,
    available_flows,
    resolve_instance,
    run_job,
    sanitize_spec,
    table_iii,
    table_iv,
)


class TestJobSpec:
    def test_label_is_filesystem_safe(self):
        spec = JobSpec(instance="ispd09:ispd09f22:0.1", flow="contango", engine="elmore")
        assert ":" not in spec.label
        assert "/" not in spec.label

    def test_sanitizer_preserves_separators(self):
        # Stripping ':' outright mapped ti:200 and ti2:00 to the same label,
        # so one job's result file silently overwrote the other's.
        assert sanitize_spec("ti:200") != sanitize_spec("ti2:00")
        assert JobSpec(instance="ti:200").label != JobSpec(instance="ti2:00").label
        assert (
            McJobSpec(instance="ti:200").label != McJobSpec(instance="ti2:00").label
        )

    def test_sanitizer_is_injective_over_replacement_characters(self):
        # Literal '-', '_' and '%' must not collide with the ':' / '/'
        # replacements; the reserved set is percent-escaped first.
        specs = ["file:a_b", "file:a/b", "file:a-b", "file:a:b", "file:a%b"]
        labels = {sanitize_spec(spec) for spec in specs}
        assert len(labels) == len(specs)
        for label in labels:
            assert ":" not in label and "/" not in label

    def test_scenario_labels_distinct_and_safe(self):
        a = JobSpec(instance="scenario:maze:sinks=16")
        b = JobSpec(instance="scenario:maze:sinks=1,walls=6")
        assert a.label != b.label
        assert ":" not in a.label and "/" not in a.label

    def test_resolve_ti_instance(self):
        instance = resolve_instance(JobSpec(instance="ti:40"))
        assert instance.sink_count == 40

    def test_resolve_ti_with_seed_changes_instance(self):
        a = resolve_instance(JobSpec(instance="ti:40"))
        b = resolve_instance(JobSpec(instance="ti:40", seed=9))
        positions_a = sorted((s.position.x, s.position.y) for s in a.sinks)
        positions_b = sorted((s.position.x, s.position.y) for s in b.sinks)
        assert positions_a != positions_b

    def test_resolve_scaled_ispd09_instance(self):
        instance = resolve_instance(JobSpec(instance="ispd09:ispd09f22:0.1"))
        assert 0 < instance.sink_count < 91

    def test_bad_specs_raise(self):
        with pytest.raises(ValueError, match="sink count"):
            resolve_instance(JobSpec(instance="ti:lots"))
        with pytest.raises(ValueError, match="unknown instance spec"):
            resolve_instance(JobSpec(instance="nope:1"))

    def test_available_flows_lists_contango_and_baselines(self):
        flows = available_flows()
        assert "contango" in flows
        assert "unoptimized_dme" in flows


class TestRunJob:
    def test_record_is_json_serializable_and_complete(self):
        record = run_job(JobSpec(instance="ti:30", engine="elmore"))
        json.dumps(record.to_record())  # must not raise
        assert record.sinks == 30
        assert record.summary.flow == "contango"
        assert [row.stage for row in record.stage_table] == [
            "INITIAL", "TBSZ", "TWSZ", "TWSN", "BWSN",
        ]
        assert record.wall_clock_s > 0.0

    def test_custom_pipeline_travels_through_the_spec(self):
        record = run_job(
            JobSpec(instance="ti:30", engine="elmore", pipeline=("initial", "twsz"))
        )
        assert [row.stage for row in record.stage_table] == ["INITIAL", "TWSZ"]
        assert record.pipeline == ["initial", "twsz"]

    def test_unknown_flow_raises(self):
        with pytest.raises(ValueError, match="unknown flow"):
            run_job(JobSpec(instance="ti:30", flow="nope"))


class TestBatchRunner:
    def jobs(self):
        return [
            JobSpec(instance="ti:30", engine="elmore"),
            JobSpec(instance="ti:30", flow="unoptimized_dme", engine="elmore"),
        ]

    def test_serial_batch_preserves_job_order(self):
        batch = BatchRunner(self.jobs(), max_workers=1).run()
        assert [r.flow for r in batch.records] == ["contango", "unoptimized_dme"]
        assert not batch.failures

    def test_parallel_batch_matches_serial_results(self):
        serial = BatchRunner(self.jobs(), max_workers=1).run()
        parallel = BatchRunner(self.jobs(), max_workers=2).run()

        def comparable(record):
            summary = record.summary.to_record()
            summary.pop("runtime_s")
            return (record.job, summary)

        assert [comparable(r) for r in serial.records] == [
            comparable(r) for r in parallel.records
        ]

    def test_failed_job_yields_error_record_not_crash(self):
        jobs = [JobSpec(instance="ti:30", engine="elmore"), JobSpec(instance="nope:1")]
        events = []
        batch = BatchRunner(jobs, max_workers=1).run(
            on_result=lambda index, record: events.append(index)
        )
        assert sorted(events) == [0, 1]
        assert len(batch.failures) == 1
        assert "unknown instance spec" in batch.failures[0].error

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            BatchRunner([], max_workers=1)

    def test_lent_executor_is_reused_and_never_shut_down(self):
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=2) as pool:
            first = BatchRunner(self.jobs(), max_workers=2, executor=pool).run()
            # A second batch on the same pool proves run() did not shut it down.
            second = BatchRunner(self.jobs(), max_workers=2, executor=pool).run()
        assert not first.failures and not second.failures
        assert [r.job for r in first.records] == [r.job for r in second.records]


class TestTables:
    def test_table_iv_renders_one_row_per_job(self):
        batch = BatchRunner(
            [JobSpec(instance="ti:30", engine="elmore")], max_workers=1
        ).run()
        rendered = table_iv(batch.records)
        assert "CLR[ps]" in rendered
        assert "contango" in rendered

    def test_table_iii_renders_stage_rows(self):
        record = run_job(JobSpec(instance="ti:30", engine="elmore"))
        rendered = table_iii(record)
        for stage in ("INITIAL", "TBSZ", "BWSN"):
            assert stage in rendered


class TestCli:
    def test_run_streams_per_job_json_and_summary(self, tmp_path, capsys):
        out_dir = tmp_path / "results"
        summary_path = tmp_path / "summary.json"
        code = main(
            [
                "run",
                "--instance", "ti:30",
                "--flow", "contango",
                "--flow", "unoptimized_dme",
                "--engine", "elmore",
                "--jobs", "2",
                "--output-dir", str(out_dir),
                "--summary-json", str(summary_path),
            ]
        )
        assert code == 0
        per_job = sorted(p.name for p in out_dir.glob("*.json"))
        assert len(per_job) == 2
        summary = json.loads(summary_path.read_text())
        assert summary["jobs"] == 2
        assert len(summary["records"]) == 2
        printed = capsys.readouterr().out
        assert "CLR[ps]" in printed

    def test_run_propagates_job_failure_as_exit_code(self, tmp_path, capsys):
        code = main(["run", "--instance", "nope:1", "--jobs", "1"])
        assert code == 1

    def test_table_rerenders_summary_file(self, tmp_path, capsys):
        summary_path = tmp_path / "summary.json"
        main(
            [
                "run",
                "--instance", "ti:30",
                "--engine", "elmore",
                "--summary-json", str(summary_path),
            ]
        )
        capsys.readouterr()
        code = main(["table", "--input", str(summary_path), "--stages"])
        assert code == 0
        printed = capsys.readouterr().out
        assert "INITIAL" in printed

    def test_list_passes_works_standalone(self, capsys):
        code = main(["run", "--list-passes"])
        assert code == 0
        printed = capsys.readouterr().out.split()
        assert {"initial", "tbsz", "unoptimized_dme"} <= set(printed)

    def test_run_without_instance_fails_clearly(self, capsys):
        code = main(["run"])
        assert code == 2
        assert "--instance" in capsys.readouterr().err

    def test_bench_writes_speedup_record(self, tmp_path, capsys):
        output = tmp_path / "BENCH_runner.json"
        code = main(
            ["bench", "--sinks", "30", "--matrix", "2", "--workers", "2",
             "--summary-json", str(output)]
        )
        assert code == 0
        payload = json.loads(output.read_text())
        assert payload["jobs"] == 2
        assert payload["serial_wall_clock_s"] > 0.0
        assert payload["parallel_wall_clock_s"] > 0.0
        assert payload["failures"] == 0
        # The single-CPU annotation must always be present and truthful, so
        # downstream gates can trust it instead of re-deriving it.
        assert payload["speedup_meaningful"] == ((os.cpu_count() or 1) > 1)
        if (os.cpu_count() or 1) >= 4:
            # With real cores available the parallel matrix must win; on a
            # starved CI box we only require it recorded both timings.
            assert payload["speedup"] > 1.0

    def test_bench_output_flag_is_a_compatible_alias(self, tmp_path, capsys):
        output = tmp_path / "BENCH_runner.json"
        code = main(
            ["bench", "--sinks", "20", "--matrix", "1", "--workers", "1",
             "--output", str(output)]
        )
        assert code == 0
        assert json.loads(output.read_text())["jobs"] == 1

    def test_version_flag_prints_package_version(self, capsys):
        from repro.cli import package_version

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        printed = capsys.readouterr().out
        assert printed.startswith("repro ")
        assert package_version() in printed

    def test_version_matches_module_fallback(self):
        # pyproject and repro.__version__ must not drift apart again.
        import repro
        from repro.cli import package_version

        assert package_version() == repro.__version__
