"""Tests for the baseline (non-integrated) synthesis flows."""

import pytest

from repro.baselines import (
    BoundedSkewBaseline,
    GreedyBufferedBaseline,
    UnoptimizedDmeBaseline,
    all_baselines,
)
from repro.core import FlowConfig

from repro.testing import make_small_instance


@pytest.fixture(scope="module")
def instance():
    return make_small_instance(sink_count=20)


@pytest.fixture(scope="module")
def config():
    return FlowConfig(engine="arnoldi")


class TestBaselineFlows:
    def test_all_baselines_returns_three_distinct_flows(self, config):
        flows = all_baselines(config)
        assert len(flows) == 3
        assert len({flow.name for flow in flows}) == 3

    @pytest.mark.parametrize("flow_cls", [GreedyBufferedBaseline, UnoptimizedDmeBaseline, BoundedSkewBaseline])
    def test_each_baseline_produces_a_valid_buffered_tree(self, flow_cls, instance, config):
        result = flow_cls(config).run(instance)
        result.tree.validate()
        assert result.tree.buffer_count() > 0
        assert result.tree.sink_count() == instance.sink_count
        assert result.flow_name == flow_cls.name

    @pytest.mark.parametrize("flow_cls", [GreedyBufferedBaseline, UnoptimizedDmeBaseline, BoundedSkewBaseline])
    def test_polarity_corrected(self, flow_cls, instance, config):
        result = flow_cls(config).run(instance)
        assert len(result.tree.wrong_polarity_sinks()) == 0

    def test_summary_row_shape(self, instance, config):
        result = UnoptimizedDmeBaseline(config).run(instance)
        row = result.summary()
        assert row["flow"] == "unoptimized_dme"
        assert row["clr_ps"] > 0.0

    def test_bounded_skew_baseline_validates_bound(self):
        with pytest.raises(ValueError):
            BoundedSkewBaseline(skew_bound=-5.0)

    def test_baselines_use_distinct_buffer_choices(self, instance, config):
        greedy = GreedyBufferedBaseline(config).run(instance)
        dme = UnoptimizedDmeBaseline(config).run(instance)
        assert greedy.chosen_buffer != dme.chosen_buffer
