"""Tests for the scenario-family registry and the built-in families."""

import pytest

from repro.runner import JobSpec, resolve_instance
from repro.scenarios import (
    SCENARIO_REGISTRY,
    ScenarioFamily,
    ScenarioParam,
    canonical_scenario_spec,
    expand_sweep,
    generate_scenario,
    get_family,
    parse_scenario_spec,
    register_family,
    scenario_names,
)
from repro.workloads import instance_fingerprint

#: Small parameterizations so the whole suite generates in milliseconds.
SMALL = {
    "maze": "scenario:maze:sinks=16,walls=3",
    "macros": "scenario:macros:sinks=16,macros=3",
    "strip": "scenario:strip:sinks=16",
    "banks": "scenario:banks:sinks=16,clusters=4",
}


class TestRegistry:
    def test_required_families_registered(self):
        assert {"maze", "macros", "strip", "banks"} <= set(scenario_names())
        assert len(scenario_names()) >= 4

    def test_small_specs_cover_every_family(self):
        # A new family must be added to SMALL (and to the golden fingerprint
        # file) so its determinism and validity are actually exercised.
        assert set(SMALL) == set(scenario_names())

    def test_get_family_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown scenario family"):
            get_family("nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_family(SCENARIO_REGISTRY["maze"])

    def test_families_document_their_params(self):
        for family in SCENARIO_REGISTRY.values():
            assert family.description
            for param in family.params:
                assert param.doc


class TestDeterminismAndValidity:
    @pytest.mark.parametrize("name", sorted(SMALL))
    def test_same_spec_same_fingerprint(self, name):
        a = generate_scenario(SMALL[name])
        b = generate_scenario(SMALL[name])
        assert instance_fingerprint(a) == instance_fingerprint(b)

    @pytest.mark.parametrize("name", sorted(SMALL))
    def test_default_instance_validates(self, name):
        instance = generate_scenario(SMALL[name])
        instance.validate()
        assert instance.sink_count == 16
        assert instance.capacitance_limit is not None

    @pytest.mark.parametrize("name", sorted(SMALL))
    def test_seed_changes_instance(self, name):
        a = generate_scenario(SMALL[name])
        b = generate_scenario(SMALL[name] + ",seed=11")
        assert instance_fingerprint(a) != instance_fingerprint(b)

    def test_override_order_is_irrelevant(self):
        a = generate_scenario("scenario:banks:sinks=16,clusters=4")
        b = generate_scenario("scenario:banks:clusters=4,sinks=16")
        assert instance_fingerprint(a) == instance_fingerprint(b)

    def test_parameter_change_changes_instance(self):
        a = generate_scenario("scenario:maze:sinks=16,walls=3")
        b = generate_scenario("scenario:maze:sinks=16,walls=4")
        assert instance_fingerprint(a) != instance_fingerprint(b)


class TestFamilyStructure:
    def test_maze_rejects_walls_too_thick_for_their_pitch(self):
        # Over-thick walls would overlap each other; the failure must be a
        # parameter error, not a confusing mid-generation geometry error.
        with pytest.raises(ValueError, match="leaves no corridor"):
            generate_scenario("scenario:maze:sinks=8,walls=34")
        with pytest.raises(ValueError, match="wall_thickness"):
            generate_scenario("scenario:maze:sinks=8,walls=10,wall_thickness=0.2")
        # The guard is tight, not over-broad: just-under-pitch still works.
        generate_scenario("scenario:maze:sinks=8,walls=10,wall_thickness=0.09").validate()

    def test_maze_walls_block_buffers_but_leave_corridors(self):
        instance = generate_scenario("scenario:maze:sinks=16,walls=3")
        assert len(instance.obstacles) == 3
        for sink in instance.sinks:
            assert not instance.obstacles.blocks_point(sink.position)

    def test_macros_place_pins_on_macros(self):
        instance = generate_scenario("scenario:macros:sinks=20,macros=3,edge_sinks=0.5")
        pins = [s for s in instance.sinks if s.name.startswith("pin_")]
        assert len(pins) == 10
        for pin in pins:
            assert any(o.rect.contains_point(pin.position) for o in instance.obstacles)
        for sink in instance.sinks:
            if sink.name.startswith("sink_"):
                assert not instance.obstacles.blocks_point(sink.position)

    def test_strip_aspect_ratio(self):
        instance = generate_scenario("scenario:strip:sinks=16,aspect=12.0")
        assert instance.die.width / instance.die.height == pytest.approx(12.0)

    def test_banks_tightness_controls_spread(self):
        tight = generate_scenario("scenario:banks:sinks=40,clusters=2,tightness=0.005,outliers=0.0")
        loose = generate_scenario("scenario:banks:sinks=40,clusters=2,tightness=0.2,outliers=0.0")

        def mean_nn_distance(instance):
            positions = [s.position for s in instance.sinks]
            total = 0.0
            for p in positions:
                total += min(p.manhattan_to(q) for q in positions if q is not p)
            return total / len(positions)

        assert mean_nn_distance(tight) < mean_nn_distance(loose)


class TestSpecParsing:
    def test_parse_resolves_defaults(self):
        family, params = parse_scenario_spec("scenario:maze")
        assert family.name == "maze"
        assert params["sinks"] == 48
        assert params["seed"] == 7

    def test_parse_coerces_types(self):
        _, params = parse_scenario_spec("scenario:banks:clusters=4,tightness=0.1")
        assert params["clusters"] == 4 and isinstance(params["clusters"], int)
        assert params["tightness"] == pytest.approx(0.1)

    def test_unknown_parameter_rejected(self):
        with pytest.raises(KeyError, match="no parameter"):
            parse_scenario_spec("scenario:maze:frobs=3")

    def test_bad_value_rejected(self):
        with pytest.raises(ValueError, match="not a valid int"):
            parse_scenario_spec("scenario:maze:sinks=lots")

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="below minimum"):
            parse_scenario_spec("scenario:maze:sinks=1")

    def test_malformed_item_rejected(self):
        with pytest.raises(ValueError, match="expected k=v"):
            parse_scenario_spec("scenario:maze:sinks")

    def test_duplicate_parameter_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            parse_scenario_spec("scenario:maze:sinks=8,sinks=9")

    def test_canonical_spec_drops_defaults_and_sorts(self):
        family = get_family("maze")
        spec = canonical_scenario_spec(family, {"walls": 3, "sinks": 48})
        assert spec == "scenario:maze:walls=3"  # sinks=48 is the default


class TestSweepExpansion:
    def test_cross_product_in_sorted_axis_order(self):
        specs = expand_sweep("banks", {"sinks": 20}, {"clusters": [2, 4], "tightness": [0.01]})
        assert specs == [
            "scenario:banks:clusters=2,sinks=20,tightness=0.01",
            "scenario:banks:clusters=4,sinks=20,tightness=0.01",
        ]

    def test_empty_sweep_is_single_point(self):
        assert expand_sweep("maze", {"sinks": 16}) == ["scenario:maze:sinks=16"]

    def test_unknown_sweep_parameter_rejected(self):
        with pytest.raises(KeyError, match="no parameter"):
            expand_sweep("maze", {}, {"frobs": [1]})

    def test_empty_value_list_rejected(self):
        with pytest.raises(ValueError, match="no values"):
            expand_sweep("maze", {}, {"walls": []})

    def test_parameter_both_fixed_and_swept_rejected(self):
        # Silently preferring the sweep would answer a contradictory request
        # with different instances than the user fixed via --set.
        with pytest.raises(ValueError, match="both fixed and swept"):
            expand_sweep("banks", {"clusters": 4}, {"clusters": [8, 16]})

    def test_expanded_specs_generate(self):
        for spec in expand_sweep("strip", {"sinks": 8}, {"aspect": [2.0, 4.0]}):
            generate_scenario(spec).validate()

    def test_swept_seed_stays_explicit_even_at_default(self):
        # An elided default seed would fall through to the job-level --seed
        # override and silently run a different seed than the sweep requested.
        specs = expand_sweep("banks", {"sinks": 16}, {"seed": [7, 11]})
        assert specs == [
            "scenario:banks:seed=7,sinks=16",
            "scenario:banks:seed=11,sinks=16",
        ]
        seed7 = resolve_instance(JobSpec(instance=specs[0], seed=5))
        assert instance_fingerprint(seed7) == instance_fingerprint(
            generate_scenario("scenario:banks:sinks=16")  # default seed 7
        )


class TestRunnerResolution:
    def test_resolve_instance_handles_scenario_specs(self):
        instance = resolve_instance(JobSpec(instance="scenario:maze:sinks=16,walls=3"))
        assert instance.sink_count == 16
        assert len(instance.obstacles) == 3

    def test_job_seed_selects_scenario_variant(self):
        a = resolve_instance(JobSpec(instance="scenario:strip:sinks=8"))
        b = resolve_instance(JobSpec(instance="scenario:strip:sinks=8", seed=11))
        assert instance_fingerprint(a) != instance_fingerprint(b)

    def test_explicit_spec_seed_wins_over_job_seed(self):
        a = resolve_instance(JobSpec(instance="scenario:strip:sinks=8,seed=3"))
        b = resolve_instance(JobSpec(instance="scenario:strip:sinks=8,seed=3", seed=11))
        assert instance_fingerprint(a) == instance_fingerprint(b)


class TestFamilyClass:
    def test_seed_param_is_implicit(self):
        with pytest.raises(ValueError, match="implicit"):
            ScenarioFamily(
                name="x",
                description="d",
                params=(ScenarioParam("seed", 1, "boom"),),
                builder=lambda rng, p: None,
            )

    def test_duplicate_params_rejected(self):
        with pytest.raises(ValueError, match="duplicate parameter"):
            ScenarioFamily(
                name="x",
                description="d",
                params=(ScenarioParam("a", 1, "a"), ScenarioParam("a", 2, "a")),
                builder=lambda rng, p: None,
            )
