"""Tests for the warm-pool SynthesisService facade (repro.api.service)."""

import pytest

from repro.api.jobs import JobMatrix, JobSpec, McJobSpec, MonteCarloAxes
from repro.api.records import ErrorRecord, McRecord, RunRecord
from repro.api.service import JobEvent, SynthesisService
from repro.runner import JobError
from repro.store import RunStore

FAST = ("initial",)  # initial-tree-only pipeline keeps service tests quick


class TestFacadeCalls:
    def test_synthesize_returns_typed_record(self):
        with SynthesisService() as service:
            record = service.synthesize("ti:30", engine="elmore", pipeline=FAST)
        assert isinstance(record, RunRecord)
        assert record.sinks == 30
        assert record.pipeline == ["initial"]
        assert record.fingerprint

    def test_monte_carlo_returns_typed_record(self):
        with SynthesisService() as service:
            record = service.monte_carlo(
                "ti:30", samples=16, seed=3, pipeline=FAST
            )
        assert isinstance(record, McRecord)
        assert record.yield_.n_samples == 16

    def test_failed_single_job_raises_job_error(self):
        with SynthesisService() as service:
            with pytest.raises(JobError, match="unknown instance spec"):
                service.synthesize("nope:1")

    def test_sweep_runs_a_matrix_in_job_order(self):
        with SynthesisService() as service:
            batch = service.sweep(
                families=["banks"],
                fixed={"sinks": 16},
                sweeps={"clusters": [2, 4]},
                engines=["elmore"],
                pipeline=FAST,
            )
        assert [r.instance for r in batch.records] == [
            "scenario:banks:clusters=2,sinks=16",
            "scenario:banks:clusters=4,sinks=16",
        ]
        assert not batch.failures
        assert batch.wall_clock_s > 0.0

    def test_sweep_accepts_a_prebuilt_matrix(self):
        matrix = JobMatrix(
            instances=["ti:30"],
            engines=["elmore"],
            pipeline=FAST,
            monte_carlo=MonteCarloAxes(samples=(8,)),
        )
        with SynthesisService() as service:
            batch = service.sweep(matrix)
        (record,) = batch.records
        assert isinstance(record, McRecord)
        assert record.samples == 8


class TestStreaming:
    def jobs(self):
        return [
            JobSpec(instance="ti:30", engine="elmore", pipeline=FAST),
            JobSpec(instance="nope:1"),
        ]

    def test_stream_yields_started_and_completed_events(self):
        with SynthesisService() as service:
            events = list(service.stream(self.jobs()))
        assert [(e.index, e.kind) for e in events] == [
            (0, "started"),
            (0, "completed"),
            (1, "started"),
            (1, "completed"),
        ]
        assert all(e.total == 2 for e in events)
        assert all(e.record is None for e in events if e.kind == "started")
        completed = [e for e in events if e.kind == "completed"]
        assert [e.failed for e in completed] == [False, True]
        assert isinstance(completed[1].record, ErrorRecord)

    def test_pooled_stream_emits_all_started_events_up_front(self):
        jobs = [
            JobSpec(instance="ti:20", engine="elmore", pipeline=FAST),
            JobSpec(instance="ti:24", engine="elmore", pipeline=FAST),
        ]
        with SynthesisService(max_workers=2) as service:
            kinds = [e.kind for e in service.stream(jobs)]
        assert kinds == ["started", "started", "completed", "completed"]

    def test_traced_service_attaches_span_summaries(self):
        with SynthesisService(trace=True) as traced:
            record = traced.synthesize(
                "ti:30", engine="elmore", pipeline=FAST, seed=5
            )
        assert record.trace is not None
        assert record.trace["schema"] == 1
        assert record.trace["spans"] > 0
        names = {entry["name"] for entry in record.trace["top"]}
        assert "flow:contango" in names
        # Tracing never perturbs results: same job untraced, same fingerprint
        # and summary.
        with SynthesisService() as plain:
            baseline = plain.synthesize(
                "ti:30", engine="elmore", pipeline=FAST, seed=5
            )
        assert baseline.trace is None
        assert baseline.fingerprint == record.fingerprint
        traced_dict, plain_dict = record.to_record(), baseline.to_record()
        for payload in (traced_dict, plain_dict):
            payload.pop("trace", None)
            payload.pop("wall_clock_s")
            payload["summary"].pop("runtime_s")
            for row in payload["stage_table"]:
                row.pop("elapsed_s")
        assert traced_dict == plain_dict

    def test_traced_pool_serializes_spans_back_with_records(self):
        jobs = [
            JobSpec(instance="ti:20", engine="elmore", pipeline=FAST),
            JobSpec(instance="ti:24", engine="elmore", pipeline=FAST),
        ]
        with SynthesisService(max_workers=2, trace=True) as service:
            batch = service.run(jobs)
        assert not batch.failures
        for record in batch.records:
            assert record.trace is not None and record.trace["spans"] > 0

    def test_run_fires_callback_and_collects_in_job_order(self):
        seen = []
        with SynthesisService() as service:
            batch = service.run(self.jobs(), on_event=seen.append)
        assert all(isinstance(e, JobEvent) for e in seen)
        assert len(batch.records) == 2
        assert isinstance(batch.records[0], RunRecord)
        assert len(batch.failures) == 1

    def test_empty_stream_is_empty(self):
        with SynthesisService() as service:
            assert list(service.stream([])) == []


class TestProgressEvents:
    """The reserved ``progress`` event kind, and the default's stability."""

    jobs = staticmethod(
        lambda: [
            JobSpec(instance="ti:20", engine="elmore", pipeline=FAST),
            JobSpec(instance="ti:24", engine="elmore", pipeline=FAST),
        ]
    )

    @staticmethod
    def shape(event):
        """Every JobEvent field except the record (which carries wall-clock)."""
        return (event.index, event.total, event.kind, event.cached, event.note)

    def test_default_started_completed_events_are_byte_identical(self):
        """progress=False leaves the event sequence exactly as it was:
        same kinds, same order, and the new ``cached``/``note`` fields at
        their defaults on every event."""
        with SynthesisService() as service:
            plain = list(service.stream(self.jobs()))
        with SynthesisService() as service:
            opted = list(service.stream(self.jobs(), progress=True))
        assert [self.shape(e) for e in plain] == [
            (0, 2, "started", False, ""),
            (0, 2, "completed", False, ""),
            (1, 2, "started", False, ""),
            (1, 2, "completed", False, ""),
        ]
        # The started/completed subsequence is field-identical with progress
        # on -- heartbeats are inserted, never substituted.
        backbone = [self.shape(e) for e in opted if e.kind != "progress"]
        assert backbone == [self.shape(e) for e in plain]
        for with_progress, without in zip(
            (e.record for e in opted if e.kind == "completed"),
            (e.record for e in plain if e.kind == "completed"),
        ):
            assert with_progress.fingerprint == without.fingerprint

    def test_in_process_progress_heartbeats_pending_jobs(self):
        with SynthesisService() as service:
            events = list(service.stream(self.jobs(), progress=True))
        assert [(e.index, e.kind) for e in events] == [
            (0, "started"),
            (0, "completed"),
            (1, "progress"),  # job 1 hears that 1/2 of the batch is done
            (1, "started"),
            (1, "completed"),
        ]
        heartbeat = events[2]
        assert heartbeat.note == "1/2 completed"
        assert heartbeat.record is None and not heartbeat.failed

    def test_pooled_progress_heartbeats_only_still_pending_jobs(self):
        with SynthesisService(max_workers=2) as service:
            events = list(service.stream(self.jobs(), progress=True))
        kinds = [e.kind for e in events]
        assert kinds[:2] == ["started", "started"]
        assert kinds.count("completed") == 2
        assert kinds.count("progress") == 1  # none after the last completion
        heartbeat = next(e for e in events if e.kind == "progress")
        completed_first = next(e.index for e in events if e.kind == "completed")
        assert heartbeat.note == "1/2 completed"
        assert heartbeat.index != completed_first  # only pending jobs hear it


class TestSubmit:
    """The future-returning dispatch primitive under the serve scheduler."""

    def test_in_process_submit_resolves_to_a_record(self):
        with SynthesisService() as service:
            future = service.submit(
                JobSpec(instance="ti:20", engine="elmore", pipeline=FAST)
            )
            record = future.result(timeout=0)  # already resolved: ran inline
        assert isinstance(record, RunRecord)
        assert service.jobs_dispatched == 1

    def test_pooled_submit_resolves_to_a_record(self):
        with SynthesisService(max_workers=2) as service:
            future = service.submit(
                JobSpec(instance="ti:20", engine="elmore", pipeline=FAST)
            )
            record = future.result(timeout=300)
        assert isinstance(record, RunRecord)

    def test_failed_job_resolves_to_an_error_record_not_an_exception(self):
        with SynthesisService() as service:
            record = service.submit(JobSpec(instance="nope:1")).result(timeout=0)
        assert isinstance(record, ErrorRecord)
        assert "unknown instance spec" in record.error

    def test_record_is_stored_before_the_future_resolves(self, tmp_path):
        store = RunStore(tmp_path / "store")
        with SynthesisService(store=store, run_id="submit") as service:
            record = service.submit(
                JobSpec(instance="ti:20", engine="elmore", pipeline=FAST)
            ).result(timeout=0)
        stored = store.records(run_id="submit")
        assert [row["fingerprint"] for row in stored] == [record.fingerprint]

    def test_closed_service_refuses_submit(self):
        service = SynthesisService()
        service.close()
        with pytest.raises(RuntimeError, match="closed"):
            service.submit(JobSpec(instance="ti:20"))


class TestAttachedStore:
    def test_every_call_is_recorded_and_content_addressed(self, tmp_path):
        store = RunStore(tmp_path / "store")
        with SynthesisService(store=store, run_id="api") as service:
            record = service.synthesize("ti:30", engine="elmore", pipeline=FAST)
            service.monte_carlo("ti:30", samples=8, seed=3, pipeline=FAST)
            with pytest.raises(JobError):
                service.synthesize("nope:1")
        stored = store.typed_records(run_id="api")
        assert [type(r) for r in stored] == [RunRecord, McRecord, ErrorRecord]
        assert stored[0].to_record() == record.to_record()
        (envelope,) = store.entries(instance="ti:30", flow="contango")[:1]
        assert envelope["fingerprint"] == record.fingerprint

    def test_store_path_is_accepted_directly(self, tmp_path):
        with SynthesisService(store=str(tmp_path / "s")) as service:
            service.synthesize("ti:30", engine="elmore", pipeline=FAST)
        assert len(RunStore(tmp_path / "s").records(run_id="service")) == 1

    def test_compare_diffs_two_store_runs(self, tmp_path):
        store = RunStore(tmp_path / "store")
        for run_id in ("base", "cand"):
            with SynthesisService(store=store, run_id=run_id) as service:
                service.synthesize("ti:30", engine="elmore", pipeline=FAST)
        with SynthesisService(store=store) as service:
            result = service.compare("base", "cand")
        (row,) = result.rows
        assert not row.regressed
        assert not row.fingerprint_changed

    def test_compare_without_store_is_an_error(self):
        with SynthesisService() as service:
            with pytest.raises(ValueError, match="attached RunStore"):
                service.compare("a", "b")

    def test_bad_run_id_rejected_at_construction(self):
        with pytest.raises(ValueError, match="run_id"):
            SynthesisService(run_id="has space")


class TestWarmPool:
    def test_workers_are_reused_across_calls(self):
        with SynthesisService(max_workers=2) as service:
            assert not service.pool_started
            service.run(
                [JobSpec(instance="ti:20", engine="elmore", pipeline=FAST),
                 JobSpec(instance="ti:24", engine="elmore", pipeline=FAST)]
            )
            assert service.pool_started
            service.synthesize("ti:20", engine="elmore", pipeline=FAST)
            service.run([JobSpec(instance="ti:20", engine="elmore", pipeline=FAST)])
            assert service.pools_created == 1
            assert service.jobs_dispatched == 4

    def test_parallel_results_match_in_process_results(self):
        jobs = [
            JobSpec(instance="ti:20", engine="elmore", pipeline=FAST),
            JobSpec(instance="ti:24", engine="elmore", pipeline=FAST),
        ]
        with SynthesisService(max_workers=1) as inproc:
            serial = inproc.run(jobs)
        with SynthesisService(max_workers=2) as pooled:
            parallel = pooled.run(jobs)

        def comparable(record):
            summary = record.summary.to_record()
            summary.pop("runtime_s")
            return (record.job, record.fingerprint, summary)

        assert [comparable(r) for r in serial.records] == [
            comparable(r) for r in parallel.records
        ]

    def test_closed_service_refuses_work(self):
        service = SynthesisService()
        service.close()
        with pytest.raises(RuntimeError, match="closed"):
            list(service.stream([JobSpec(instance="ti:20", pipeline=FAST)]))

    def test_broken_pool_is_replaced_not_cached(self):
        # A worker killed mid-call (OOM/segfault) leaves the executor in the
        # BrokenProcessPool state; a long-lived service must recover on the
        # next call instead of raising forever.  The broken flag is forced
        # directly (crashing a real worker deterministically is platform
        # teardown the synthesis jobs cannot provide).
        job = JobSpec(instance="ti:20", engine="elmore", pipeline=FAST)
        with SynthesisService(max_workers=2) as service:
            first = service.run([job])
            assert not first.failures
            service._executor._broken = "simulated worker death"
            second = service.run([job])
            assert not second.failures
            assert service.pools_created == 2
        assert first.records[0].fingerprint == second.records[0].fingerprint

    def test_in_process_mode_never_starts_a_pool(self):
        with SynthesisService(max_workers=1) as service:
            service.synthesize("ti:20", engine="elmore", pipeline=FAST)
            assert not service.pool_started
            assert service.pools_created == 0
