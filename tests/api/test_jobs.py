"""Tests for the unified job model and the single expand() path (repro.api.jobs)."""

import pytest

from repro.api.jobs import Job, JobMatrix, JobSpec, McJobSpec, MonteCarloAxes


class TestHierarchy:
    def test_both_spec_kinds_are_jobs(self):
        assert isinstance(JobSpec(instance="ti:30"), Job)
        assert isinstance(McJobSpec(instance="ti:30"), Job)

    def test_specs_are_hashable_and_picklable(self):
        import pickle

        spec = McJobSpec(instance="ti:30", samples=16, gated=True)
        assert pickle.loads(pickle.dumps(spec)) == spec
        assert len({spec, spec}) == 1

    def test_mc_seed_must_be_concrete(self):
        assert McJobSpec(instance="ti:30").seed == 7
        with pytest.raises(ValueError, match="seed"):
            McJobSpec(instance="ti:30", seed=None)

    def test_misplaced_positional_arguments_fail_fast(self):
        # The unified hierarchy moved pipeline/seed ahead of the MC axes, so
        # a legacy positional call like McJobSpec("ti:200", "contango",
        # "arnoldi", 512, "correlated") would land 512 in pipeline and
        # "correlated" in seed; the constructor must reject that shape
        # immediately rather than crash inside a worker.
        with pytest.raises(ValueError, match="pipeline"):
            McJobSpec("ti:200", "contango", "arnoldi", 512, "correlated")
        with pytest.raises(ValueError, match="pipeline"):
            JobSpec(instance="ti:30", pipeline="initial")  # a bare string
        with pytest.raises(ValueError, match="seed"):
            JobSpec(instance="ti:30", seed="7")


class TestJobMatrixExpansion:
    def test_run_matrix_order_is_instance_flow_engine(self):
        matrix = JobMatrix(
            instances=["ti:30", "ti:60"],
            flows=["contango", "unoptimized_dme"],
            engines=["elmore", "arnoldi"],
        )
        jobs = matrix.expand()
        assert [(j.instance, j.flow, j.engine) for j in jobs] == [
            (instance, flow, engine)
            for instance in ["ti:30", "ti:60"]
            for flow in ["contango", "unoptimized_dme"]
            for engine in ["elmore", "arnoldi"]
        ]
        assert all(type(j) is JobSpec for j in jobs)

    def test_family_sweep_points_come_before_explicit_instances(self):
        matrix = JobMatrix(
            instances=["ti:20"],
            families=["banks"],
            fixed={"sinks": 16},
            sweeps={"clusters": [2, 4]},
            engines=["elmore"],
        )
        assert [j.instance for j in matrix.expand()] == [
            "scenario:banks:clusters=2,sinks=16",
            "scenario:banks:clusters=4,sinks=16",
            "ti:20",
        ]

    def test_pipeline_and_seed_reach_every_job(self):
        jobs = JobMatrix(
            instances=["ti:30"], pipeline=("initial", "twsz"), seed=11
        ).expand()
        assert jobs[0].pipeline == ("initial", "twsz")
        assert jobs[0].seed == 11

    def test_mc_matrix_expands_sample_axis_innermost(self):
        matrix = JobMatrix(
            instances=["ti:30", "ti:60"],
            monte_carlo=MonteCarloAxes(samples=(32, 64), family="correlated"),
        )
        jobs = matrix.expand()
        assert all(type(j) is McJobSpec for j in jobs)
        assert [(j.instance, j.samples) for j in jobs] == [
            ("ti:30", 32), ("ti:30", 64), ("ti:60", 32), ("ti:60", 64),
        ]
        assert {j.family for j in jobs} == {"correlated"}
        # A matrix without an explicit seed pins the MC default seed.
        assert {j.seed for j in jobs} == {7}

    def test_mc_axes_propagate_gating(self):
        (job,) = JobMatrix(
            instances=["ti:30"],
            monte_carlo=MonteCarloAxes(samples=(16,), gated=True, gate_samples=8),
        ).expand()
        assert job.gated is True
        assert job.gate_samples == 8

    def test_empty_matrix_rejected(self):
        with pytest.raises(ValueError, match="at least one instance"):
            JobMatrix().expand()
        with pytest.raises(ValueError, match="sample count"):
            MonteCarloAxes(samples=())

    def test_unknown_family_fails_before_any_expansion(self):
        with pytest.raises(KeyError, match="unknown scenario family"):
            JobMatrix(families=["nope"]).expand()

    def test_invalid_mc_axes_surface_at_expand(self):
        matrix = JobMatrix(
            instances=["ti:30"],
            flows=["unoptimized_dme"],
            monte_carlo=MonteCarloAxes(samples=(16,), gated=True),
        )
        with pytest.raises(ValueError, match="not available for flow"):
            matrix.expand()


class TestLabels:
    def test_labels_match_the_historical_layout(self):
        assert JobSpec(instance="ti:200").label == "ti-200__contango__arnoldi"
        assert (
            McJobSpec(instance="ti:200", samples=500, seed=3).label
            == "ti-200__contango__arnoldi__mc500__independent__seed3"
        )

    def test_matrix_labels_are_unique(self):
        jobs = JobMatrix(
            instances=["ti:30"],
            flows=["contango", "unoptimized_dme"],
            engines=["elmore", "arnoldi"],
        ).expand()
        labels = [j.label for j in jobs]
        assert len(set(labels)) == len(labels)
