"""Round-trip tests for the typed record schemas (repro.api.records).

The contract under test: for every record shape the system has ever
persisted -- synthesis runs, Monte Carlo runs, error records, with and
without their conditional keys -- ``record_from_dict(r).to_record() == r``
*bit-identically*, including key order.  The legacy corpus is pinned in
``tests/golden/legacy_records.json`` (captured from the PR-4 code paths) and
``benchmarks/baseline_store/runs.jsonl`` (a real PR-4 store line).
"""

import json
from pathlib import Path

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.api.records import (
    MISSING,
    ErrorRecord,
    McRecord,
    RunRecord,
    RunSummary,
    StageRow,
    YieldSummary,
    record_from_dict,
)

GOLDEN = Path(__file__).parent.parent / "golden" / "legacy_records.json"
BASELINE_STORE = (
    Path(__file__).parent.parent.parent / "benchmarks" / "baseline_store" / "runs.jsonl"
)


def legacy_records():
    return json.loads(GOLDEN.read_text())


class TestGoldenRoundTrips:
    @pytest.mark.parametrize("name", sorted(legacy_records()))
    def test_legacy_record_round_trips_bit_identically(self, name):
        record = legacy_records()[name]
        round_tripped = record_from_dict(record).to_record()
        assert round_tripped == record
        # Key *order* is part of the contract: per-job JSON files are written
        # without sort_keys, so field order must match the legacy layout.
        assert list(round_tripped) == list(record)

    def test_dispatch_selects_the_right_class(self):
        records = legacy_records()
        assert isinstance(record_from_dict(records["run"]), RunRecord)
        assert isinstance(record_from_dict(records["mc"]), McRecord)
        assert isinstance(record_from_dict(records["error"]), ErrorRecord)
        assert isinstance(record_from_dict(records["mc_error"]), ErrorRecord)

    def test_typed_records_pass_through_dispatch(self):
        typed = record_from_dict(legacy_records()["run"])
        assert record_from_dict(typed) is typed

    def test_pr4_baseline_store_records_round_trip(self):
        # The committed CI-gate baseline store was written by the PR-4 code
        # paths; its payloads are the realest legacy corpus there is.
        lines = [
            json.loads(line)
            for line in BASELINE_STORE.read_text().splitlines()
            if line.strip()
        ]
        assert lines, "baseline store is empty?"
        for envelope in lines:
            record = envelope["record"]
            parsed = record_from_dict(record)
            assert isinstance(parsed, RunRecord)
            # Store lines are serialized with sort_keys=True, so only content
            # equality (not key order) is the contract here.
            assert parsed.to_record() == record

    def test_nested_payloads_parse_typed(self):
        run = record_from_dict(legacy_records()["run"])
        assert isinstance(run.summary, RunSummary)
        assert all(isinstance(row, StageRow) for row in run.stage_table)
        mc = record_from_dict(legacy_records()["mc"])
        assert isinstance(mc.yield_, YieldSummary)
        assert isinstance(mc.nominal, RunSummary)
        assert mc.to_record()["yield"]["n_samples"] == mc.yield_.n_samples


class TestConditionalKeys:
    def test_variation_gate_only_serialized_when_set(self):
        gated = legacy_records()["mc_gated"]
        plain = legacy_records()["mc"]
        assert "variation_gate" in record_from_dict(gated).to_record()
        assert "variation_gate" not in record_from_dict(plain).to_record()

    def test_legacy_error_record_keeps_its_minimal_envelope(self):
        legacy = legacy_records()["error"]
        parsed = record_from_dict(legacy)
        assert parsed.pipeline is MISSING
        assert parsed.seed is MISSING
        assert parsed.envelope("seed") is None
        assert list(parsed.to_record()) == ["job", "instance", "flow", "engine", "error"]

    def test_new_error_record_carries_the_spec_envelope(self):
        record = ErrorRecord(
            job="x", instance="ti:30", flow="contango", engine="elmore",
            error="boom", pipeline=None, seed=11,
        )
        serialized = record.to_record()
        assert serialized["seed"] == 11
        assert serialized["pipeline"] is None
        assert "samples" not in serialized  # untouched optionals stay absent
        assert record_from_dict(serialized).to_record() == serialized


class TestStageRow:
    def test_round_trip_preserves_order_and_values(self):
        row = legacy_records()["run"]["stage_table"][0]
        assert StageRow.from_record(row).to_record() == row
        assert list(StageRow.from_record(row).to_record()) == list(row)

    def test_missing_elapsed_defaults_to_zero(self):
        # Pre-PR2 saved rows had no elapsed_s; table rendering relied on a
        # setdefault that the schema now owns.
        row = dict(legacy_records()["run"]["stage_table"][0])
        del row["elapsed_s"]
        assert StageRow.from_record(row).elapsed_s == 0.0


#: Optional error-envelope values as they appear in real records.
_envelope_values = {
    "pipeline": st.one_of(st.none(), st.lists(st.sampled_from(
        ["initial", "tbsz", "twsz", "twsn", "bwsn"]), max_size=3)),
    "seed": st.one_of(st.none(), st.integers(min_value=0, max_value=2**31)),
    "samples": st.integers(min_value=1, max_value=10_000),
    "family": st.sampled_from(["independent", "correlated", "corner_anchored"]),
    "gated": st.booleans(),
}


class TestPropertyRoundTrips:
    @given(
        present=st.sets(st.sampled_from(sorted(_envelope_values))),
        data=st.data(),
    )
    def test_error_record_round_trips_for_any_envelope_subset(self, present, data):
        record = {
            "job": "j", "instance": "ti:30", "flow": "contango",
            "engine": "elmore", "error": "Traceback...",
        }
        # Insert in the schema's canonical envelope order, the order the
        # runner itself produces (arbitrary dict orders only promise content
        # equality, like the sort_keys store lines).
        for key in ErrorRecord._OPTIONAL:
            if key in present:
                record[key] = data.draw(_envelope_values[key], label=key)
        round_tripped = record_from_dict(record).to_record()
        assert round_tripped == record
        assert list(round_tripped) == list(record)

    @given(gate=st.one_of(st.none(), st.fixed_dictionaries({"checks": st.integers(0, 99)})))
    def test_run_record_gate_key_presence_round_trips(self, gate):
        record = dict(legacy_records()["run"])
        if gate is not None:
            record["variation_gate"] = gate
        parsed = record_from_dict(record)
        # An empty/absent gate never re-serializes; a non-empty one must.
        expected = dict(record)
        if not gate:
            expected.pop("variation_gate", None)
        assert parsed.to_record() == expected
