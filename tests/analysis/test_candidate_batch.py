"""Tests for batched candidate evaluation (``evaluate_candidates``).

The contract: scoring K independent candidate moves in one batch returns,
for every candidate, exactly the floats a full ``evaluate()`` would report
with that move applied -- bit-identical, whether the candidate went through
the batched numpy pass or the structure-change fallback -- and leaves the
tree (and the evaluator's incremental state) untouched.
"""

import pytest

from repro.analysis import ClockNetworkEvaluator, EvaluatorConfig
from repro.analysis.evaluator import CandidateBatch, CandidateScore
from repro.cts import ispd09_buffer_library, ispd09_wire_library
from tests.analysis.test_incremental import buffered_zst_tree

WIRES = ispd09_wire_library()
BUFS = ispd09_buffer_library()


def snake_moves(tree, lengths=(15.0, 40.0, 90.0)):
    """K independent content-only candidate moves (one snake per candidate)."""
    sinks = [s.node_id for s in tree.sinks()]

    def make(length):
        def move():
            tree.add_snake(sinks[0], length)
            tree.add_snake(sinks[-1], length * 0.5)
            return 2

        return move

    return [make(length) for length in lengths]


def reference_scores(tree, moves, engine="arnoldi"):
    """Score each move with a plain apply/evaluate/rollback loop."""
    evaluator = ClockNetworkEvaluator(EvaluatorConfig(engine=engine))
    reports = []
    for move in moves:
        token = tree.checkpoint()
        try:
            move()
            reports.append(evaluator.evaluate(tree, incremental=False))
        finally:
            tree.rollback_to(token)
    return reports


def assert_score_matches_report(score, report):
    assert score.skew == report.skew
    assert score.clr == report.clr
    assert score.max_latency == report.max_latency
    assert score.worst_slew == report.worst_slew
    assert score.total_capacitance == report.total_capacitance
    assert score.wirelength == report.wirelength
    assert score.has_slew_violation == report.has_slew_violation
    assert score.within_capacitance_limit == report.within_capacitance_limit


class TestBatchedParity:
    @pytest.mark.parametrize("engine", ["arnoldi", "elmore"])
    def test_batched_scores_are_bit_identical_to_full_evaluations(self, engine):
        tree = buffered_zst_tree()
        evaluator = ClockNetworkEvaluator(EvaluatorConfig(engine=engine))
        evaluator.evaluate(tree)
        moves = snake_moves(tree)
        batch = evaluator.evaluate_candidates(tree, moves)
        assert batch.batched == len(moves)
        assert batch.fallbacks == 0
        for score, report in zip(batch, reference_scores(tree, moves, engine)):
            assert score.batched
            assert score.changed == 2
            assert_score_matches_report(score, report)

    def test_structure_changing_candidate_falls_back_and_still_matches(self):
        tree = buffered_zst_tree()
        evaluator = ClockNetworkEvaluator(EvaluatorConfig(engine="arnoldi"))
        evaluator.evaluate(tree)
        unbuffered = next(
            n.node_id
            for n in tree.nodes()
            if not n.is_sink and n.parent is not None and not n.has_buffer
        )
        inverter = BUFS.by_name("INV_S").parallel(8)

        def structural_move():
            tree.place_buffer(unbuffered, inverter)
            return 1

        moves = snake_moves(tree)[:1] + [structural_move]
        batch = evaluator.evaluate_candidates(tree, moves)
        assert batch.batched == 1
        assert batch.fallbacks == 1
        assert not batch[1].batched
        for score, report in zip(batch, reference_scores(tree, moves)):
            assert_score_matches_report(score, report)
        assert evaluator.cache_stats()["candidate_fallbacks"] == 1

    def test_vacuous_candidate_scores_changed_zero(self):
        tree = buffered_zst_tree()
        evaluator = ClockNetworkEvaluator(EvaluatorConfig(engine="arnoldi"))
        evaluator.evaluate(tree)
        batch = evaluator.evaluate_candidates(
            tree, [lambda: 0] + snake_moves(tree)[:1]
        )
        assert batch[0].changed == 0
        assert batch[1].changed == 2

    def test_tree_and_incremental_state_are_left_untouched(self):
        tree = buffered_zst_tree()
        evaluator = ClockNetworkEvaluator(EvaluatorConfig(engine="arnoldi"))
        baseline = evaluator.evaluate(tree)
        evaluator.evaluate_candidates(tree, snake_moves(tree))
        after = evaluator.evaluate(tree)
        assert after.corners[after.fast_corner].latency == (
            baseline.corners[baseline.fast_corner].latency
        )
        assert after.summary() == baseline.summary()

    def test_empty_batch(self):
        tree = buffered_zst_tree()
        evaluator = ClockNetworkEvaluator(EvaluatorConfig(engine="arnoldi"))
        batch = evaluator.evaluate_candidates(tree, [])
        assert len(batch) == 0
        assert batch.batched == 0 and batch.fallbacks == 0


class TestSerialFallbackModes:
    def test_candidate_batching_disabled_gives_identical_scores(self):
        tree = buffered_zst_tree()
        moves = snake_moves(tree)
        batched_eval = ClockNetworkEvaluator(EvaluatorConfig(engine="arnoldi"))
        batched_eval.evaluate(tree)
        batched = batched_eval.evaluate_candidates(tree, moves)
        serial_eval = ClockNetworkEvaluator(
            EvaluatorConfig(engine="arnoldi", candidate_batching=False)
        )
        serial_eval.evaluate(tree)
        serial = serial_eval.evaluate_candidates(tree, moves)
        assert serial.batched == 0
        for fast, slow in zip(batched, serial):
            assert fast.skew == slow.skew
            assert fast.clr == slow.clr
            assert fast.max_latency == slow.max_latency
            assert fast.worst_slew == slow.worst_slew
        assert serial_eval.cache_stats()["candidate_batches"] == 0
        assert batched_eval.cache_stats()["candidate_batches"] == 1
        assert batched_eval.cache_stats()["candidates_scored"] == len(moves)

    def test_spice_engine_scores_serially_with_matching_results(self):
        from repro.testing import make_manual_tree

        tree = make_manual_tree()
        evaluator = ClockNetworkEvaluator(EvaluatorConfig(engine="spice"))
        evaluator.evaluate(tree)
        moves = snake_moves(tree, lengths=(20.0, 60.0))
        batch = evaluator.evaluate_candidates(tree, moves)
        assert batch.batched == 0
        for score, report in zip(batch, reference_scores(tree, moves, "spice")):
            assert_score_matches_report(score, report)


class TestBatchContainer:
    def test_iteration_and_indexing(self):
        scores = [
            CandidateScore(
                index=i,
                changed=1,
                skew=float(i),
                clr=0.0,
                max_latency=0.0,
                worst_slew=0.0,
                total_capacitance=0.0,
                wirelength=0.0,
                slew_limit=100.0,
                capacitance_limit=None,
                batched=True,
            )
            for i in range(3)
        ]
        batch = CandidateBatch(scores=scores, batched=3, fallbacks=0)
        assert len(batch) == 3
        assert [s.index for s in batch] == [0, 1, 2]
        assert batch[2].skew == 2.0

    def test_constraint_predicates(self):
        score = CandidateScore(
            index=0,
            changed=1,
            skew=0.0,
            clr=0.0,
            max_latency=0.0,
            worst_slew=120.0,
            total_capacitance=50.0,
            wirelength=0.0,
            slew_limit=100.0,
            capacitance_limit=40.0,
            batched=True,
        )
        assert score.has_slew_violation
        assert not score.within_capacitance_limit
