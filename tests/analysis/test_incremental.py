"""Property tests for the incremental stage cache of the evaluator.

The contract under test: *any* sequence of tree mutations followed by an
incremental evaluation produces a report identical (within float tolerance)
to a cold evaluation of the same tree by a fresh evaluator -- including the
cache-invalidation edge cases called out in the incremental-evaluation issue
(buffer removed, wire type changed, subtree re-parented) and the snapshot /
probe / rollback patterns the optimization passes rely on.
"""

import random

import pytest

from repro.analysis import ClockNetworkEvaluator, EvaluatorConfig
from repro.cts import ispd09_buffer_library, ispd09_wire_library
from repro.geometry import Point
from repro.testing import make_manual_tree, make_zst_tree

WIRES = ispd09_wire_library()
BUFS = ispd09_buffer_library()


def assert_reports_match(actual, expected, rel=1e-9):
    """Structural + numerical equality of two evaluation reports."""
    assert set(actual.corners) == set(expected.corners)
    for name in expected.corners:
        got, want = actual.corners[name], expected.corners[name]
        assert set(got.latency) == set(want.latency)
        assert set(got.tap_slew) == set(want.tap_slew)
        for sink_id, per_sink in want.latency.items():
            for transition, value in per_sink.items():
                assert got.latency[sink_id][transition] == pytest.approx(value, rel=rel)
        for tap_id, per_tap in want.tap_slew.items():
            for transition, value in per_tap.items():
                assert got.tap_slew[tap_id][transition] == pytest.approx(value, rel=rel)
    assert actual.total_capacitance == pytest.approx(expected.total_capacitance, rel=rel)
    assert actual.wirelength == pytest.approx(expected.wirelength, rel=rel)


def cold_report(tree, engine):
    """Evaluate with a brand-new evaluator and the cache switched off."""
    evaluator = ClockNetworkEvaluator(EvaluatorConfig(engine=engine))
    return evaluator.evaluate(tree, incremental=False)


def buffered_zst_tree(sink_count=16, seed=3):
    """A ZST tree with a few inverters so that several stages exist."""
    tree = make_zst_tree(sink_count=sink_count, seed=seed)
    inverter = BUFS.by_name("INV_S").parallel(8)
    internals = [
        n.node_id
        for n in tree.nodes()
        if not n.is_sink and n.parent is not None and n.children
    ]
    rng = random.Random(seed)
    for node_id in rng.sample(internals, min(4, len(internals))):
        tree.place_buffer(node_id, inverter)
    return tree


def random_mutation(tree, rng):
    """Apply one random journalled mutation; returns a description string."""
    buffered = [n.node_id for n in tree.buffers()]
    edges = [n.node_id for n in tree.nodes() if n.parent is not None]
    internals = [
        n.node_id for n in tree.nodes() if not n.is_sink and n.parent is not None
    ]
    sinks = [n.node_id for n in tree.sinks()]
    choice = rng.randrange(9)
    if choice == 0 and buffered:
        node_id = rng.choice(buffered)
        tree.place_buffer(node_id, tree.node(node_id).buffer.scaled(rng.uniform(0.7, 1.4)))
        return f"resize buffer {node_id}"
    if choice == 1 and internals:
        node_id = rng.choice(internals)
        tree.place_buffer(node_id, BUFS.by_name("INV_S").parallel(rng.choice([4, 8])))
        return f"place buffer {node_id}"
    if choice == 2 and len(buffered) > 1:
        node_id = rng.choice(buffered)
        tree.remove_buffer(node_id)
        return f"remove buffer {node_id}"
    if choice == 3 and edges:
        node_id = rng.choice(edges)
        wire = rng.choice(list(WIRES))
        tree.set_wire_type(node_id, wire)
        return f"wire type {node_id} -> {wire.name}"
    if choice == 4 and edges:
        node_id = rng.choice(edges)
        tree.add_snake(node_id, rng.uniform(5.0, 80.0))
        return f"snake {node_id}"
    if choice == 5 and edges:
        node_id = rng.choice(edges)
        tree.split_edge(node_id, rng.uniform(0.2, 0.8))
        return f"split edge above {node_id}"
    if choice == 6 and internals:
        node_id = rng.choice(internals)
        node = tree.node(node_id)
        tree.move_node(
            node_id, Point(node.position.x + rng.uniform(-40, 40), node.position.y + rng.uniform(-40, 40))
        )
        return f"move node {node_id}"
    if choice == 7 and edges:
        node_id = rng.choice(edges)
        node = tree.node(node_id)
        parent = tree.node(node.parent)
        bend = Point(parent.position.x, node.position.y)
        tree.set_route(node_id, [parent.position, bend, node.position])
        return f"reroute {node_id}"
    if choice == 8 and sinks and internals:
        sink_id = rng.choice(sinks)
        target = rng.choice([n for n in internals if n != sink_id])
        tree.detach_subtree(sink_id)
        tree.attach_subtree(sink_id, target)
        return f"reparent sink {sink_id} under {target}"
    # Fallback when the sampled mutation was not applicable.
    node_id = rng.choice(edges)
    tree.add_snake(node_id, 10.0)
    return f"fallback snake {node_id}"


class TestMutationSequences:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    @pytest.mark.parametrize("engine", ["arnoldi", "elmore"])
    def test_random_mutations_match_cold_evaluation(self, engine, seed):
        tree = buffered_zst_tree()
        evaluator = ClockNetworkEvaluator(EvaluatorConfig(engine=engine))
        evaluator.evaluate(tree)  # warm the cache
        rng = random.Random(seed)
        for step in range(12):
            description = random_mutation(tree, rng)
            tree.validate()
            incremental = evaluator.evaluate(tree)
            expected = cold_report(tree, engine)
            try:
                assert_reports_match(incremental, expected)
            except AssertionError as err:  # pragma: no cover - diagnostics
                raise AssertionError(f"step {step}: {description}: {err}") from err

    def test_spice_engine_mutations_match_cold_evaluation(self):
        tree = make_manual_tree()
        evaluator = ClockNetworkEvaluator(EvaluatorConfig(engine="spice"))
        evaluator.evaluate(tree)
        rng = random.Random(11)
        for _ in range(4):
            random_mutation(tree, rng)
            tree.validate()
            assert_reports_match(evaluator.evaluate(tree), cold_report(tree, "spice"))


class TestTargetedInvalidation:
    def setup_method(self):
        self.tree = buffered_zst_tree()
        self.evaluator = ClockNetworkEvaluator(EvaluatorConfig(engine="arnoldi"))
        self.evaluator.evaluate(self.tree)

    def check(self):
        assert_reports_match(
            self.evaluator.evaluate(self.tree), cold_report(self.tree, "arnoldi")
        )

    def test_buffer_removed(self):
        victim = self.tree.buffers()[0].node_id
        self.tree.remove_buffer(victim)
        self.check()

    def test_buffer_resized(self):
        victim = self.tree.buffers()[0].node_id
        self.tree.place_buffer(victim, self.tree.node(victim).buffer.scaled(2.0))
        self.check()

    def test_wire_type_changed(self):
        edge = next(n.node_id for n in self.tree.nodes() if n.parent is not None)
        self.tree.set_wire_type(edge, WIRES.narrowest)
        self.check()

    def test_subtree_reparented(self):
        sink = self.tree.sinks()[0].node_id
        target = next(
            n.node_id
            for n in self.tree.nodes()
            if not n.is_sink and n.parent is not None and n.node_id != sink
        )
        self.tree.detach_subtree(sink)
        self.tree.attach_subtree(sink, target)
        self.check()

    def test_snapshot_rollback_is_cache_hit(self):
        baseline = self.evaluator.evaluate(self.tree)
        snapshot = self.tree.clone()
        victim = self.tree.buffers()[0].node_id
        self.tree.place_buffer(victim, self.tree.node(victim).buffer.scaled(1.5))
        self.evaluator.evaluate(self.tree)
        self.tree.copy_state_from(snapshot)
        stats_before = self.evaluator.cache_stats()
        restored = self.evaluator.evaluate(self.tree)
        stats_after = self.evaluator.cache_stats()
        # Rolling back restores the revisions, so nothing is re-analyzed...
        assert stats_after["misses"] == stats_before["misses"]
        # ...and the report equals the pre-mutation baseline exactly.
        assert_reports_match(restored, baseline, rel=0.0)

    def test_probe_clone_shares_cache_and_leaves_original_intact(self):
        baseline = self.evaluator.evaluate(self.tree)
        probe = self.tree.clone()
        edge = next(n.node_id for n in probe.nodes() if n.parent is not None)
        probe.add_snake(edge, 50.0)
        misses_before = self.evaluator.cache_stats()["misses"]
        assert_reports_match(self.evaluator.evaluate(probe), cold_report(probe, "arnoldi"))
        probe_misses = self.evaluator.cache_stats()["misses"] - misses_before
        # Only the stage containing the perturbed edge was re-analyzed.
        assert probe_misses <= 2
        assert_reports_match(self.evaluator.evaluate(self.tree), baseline, rel=0.0)


class TestCacheBehaviour:
    def test_unchanged_tree_is_all_hits(self):
        tree = buffered_zst_tree()
        evaluator = ClockNetworkEvaluator(EvaluatorConfig(engine="arnoldi"))
        evaluator.evaluate(tree)
        misses = evaluator.cache_stats()["misses"]
        evaluator.evaluate(tree)
        stats = evaluator.cache_stats()
        assert stats["misses"] == misses
        assert stats["hits"] > 0

    def test_localized_edit_reanalyzes_few_stages(self):
        tree = buffered_zst_tree()
        evaluator = ClockNetworkEvaluator(EvaluatorConfig(engine="arnoldi"))
        evaluator.evaluate(tree)
        total_stages = evaluator.cache_stats()["tap_models"]
        sink = tree.sinks()[0].node_id
        tree.add_snake(sink, 25.0)
        misses_before = evaluator.cache_stats()["misses"]
        evaluator.evaluate(tree)
        delta = evaluator.cache_stats()["misses"] - misses_before
        assert delta == 1
        assert total_stages > 2

    def test_clear_cache_keeps_results_identical(self):
        tree = buffered_zst_tree()
        evaluator = ClockNetworkEvaluator(EvaluatorConfig(engine="arnoldi"))
        warm = evaluator.evaluate(tree)
        evaluator.clear_cache()
        assert_reports_match(evaluator.evaluate(tree), warm, rel=0.0)

    def test_incremental_flag_off_bypasses_cache(self):
        tree = buffered_zst_tree()
        config = EvaluatorConfig(engine="arnoldi", incremental=False)
        evaluator = ClockNetworkEvaluator(config)
        evaluator.evaluate(tree)
        stats = evaluator.cache_stats()
        assert stats["tap_models"] == 0
        assert stats["hits"] == 0


class TestCornerScalingEquivalence:
    """The batched moment factorization must match the per-corner reference
    engine even for corners that scale wire parasitics (ISPD'09 corners use
    wire scales of 1.0, so only a custom corner exercises these terms)."""

    @pytest.mark.parametrize("engine", ["arnoldi", "elmore"])
    def test_wire_scaled_corner_matches_reference(self, engine):
        from repro.analysis.arnoldi import arnoldi_stage_timing
        from repro.analysis.corners import Corner
        from repro.analysis.elmore import elmore_stage_timing
        from repro.analysis.rcnetwork import build_stage_network, extract_stages

        tree = make_zst_tree(sink_count=8)  # unbuffered: one source stage
        corner = Corner(
            "wirecorner", vdd=1.1, driver_scale=1.1, wire_res_scale=1.2, wire_cap_scale=1.3
        )
        evaluator = ClockNetworkEvaluator(EvaluatorConfig(engine=engine), corners=[corner])
        report = evaluator.evaluate(tree)
        stage = extract_stages(tree)[0]
        reference_engine = arnoldi_stage_timing if engine == "arnoldi" else elmore_stage_timing
        cfg = evaluator.config
        for rise, transition in ((True, "rise"), (False, "fall")):
            network = build_stage_network(
                tree,
                stage,
                corner=corner,
                max_segment_length=cfg.max_segment_length,
                rise=rise,
                pull_up_factor=cfg.pull_up_factor,
                pull_down_factor=cfg.pull_down_factor,
            )
            timing = reference_engine(network, cfg.source_slew)
            latency = report.corners["wirecorner"].latency
            tap_slew = report.corners["wirecorner"].tap_slew
            for sink in tree.sinks():
                assert latency[sink.node_id][transition] == pytest.approx(
                    timing.delay[sink.node_id], rel=1e-5
                )
                assert tap_slew[sink.node_id][transition] == pytest.approx(
                    timing.slew[sink.node_id], rel=1e-5
                )
