"""Golden pin of the seeded ti200 Monte Carlo yield summary.

The variation engine's whole value is that a seeded run is exactly
reproducible: sampling (``repro.seeding``), the batched moment math and the
summary statistics must all stay stable across refactors.  This test re-runs
the seeded 256-sample sweep on the flow-optimized 200-sink TI network and
compares the summary to ``tests/golden/ti200_yield.json`` to 9 decimal
places (the precision the golden file was written with).
"""

import json
from pathlib import Path

import pytest

from repro.analysis import ClockNetworkEvaluator, EvaluatorConfig
from repro.analysis.variation import default_variation_model
from repro.core import ContangoFlow, FlowConfig
from repro.seeding import derive_rng
from repro.workloads import generate_ti_benchmark

GOLDEN_PATH = Path(__file__).parent.parent / "golden" / "ti200_yield.json"


@pytest.fixture(scope="module")
def ti200_yield_summary():
    instance = generate_ti_benchmark(200)
    result = ContangoFlow(FlowConfig(engine="arnoldi")).run(instance)
    evaluator = ClockNetworkEvaluator(
        config=EvaluatorConfig(engine="arnoldi", slew_limit=instance.slew_limit),
        capacitance_limit=instance.capacitance_limit,
    )
    report = evaluator.evaluate_yield(
        result.require_tree(),
        default_variation_model(),
        samples=256,
        rng=derive_rng(7, "golden-yield"),
        skew_limit_ps=7.5,
    )
    return report.summary()


def test_seeded_ti200_yield_matches_golden(ti200_yield_summary):
    golden = json.loads(GOLDEN_PATH.read_text())["summary"]
    produced = {
        key: (round(value, 9) if isinstance(value, float) else value)
        for key, value in ti200_yield_summary.items()
    }
    assert produced == golden


def test_golden_distribution_is_sane(ti200_yield_summary):
    # Guard against a silently degenerate golden (all-zero or collapsed
    # distribution would "match" a stale file without testing anything).
    assert ti200_yield_summary["skew_std_ps"] > 0.5
    assert (
        ti200_yield_summary["skew_mean_ps"]
        < ti200_yield_summary["skew_p95_ps"]
        < ti200_yield_summary["skew_p99_ps"]
        <= ti200_yield_summary["skew_max_ps"]
    )
