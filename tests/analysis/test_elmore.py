"""Tests for the Elmore engine against hand-computed RC ladders."""

import pytest

from repro.analysis.elmore import elmore_stage_delays, elmore_stage_timing
from repro.analysis.rcnetwork import StageNetwork
from repro.analysis.units import LN9


def ladder(driver_resistance=100.0, stages=((50.0, 100.0), (50.0, 200.0))):
    """Hand-built RC ladder: driver -> R1 -> node1(C1) -> R2 -> node2(C2)."""
    parent = [-1]
    resistance = [0.0]
    capacitance = [0.0]
    for i, (res, cap) in enumerate(stages):
        parent.append(i)
        resistance.append(res)
        capacitance.append(cap)
    taps = {100 + len(stages) - 1: len(stages)}
    return StageNetwork(
        parent=parent,
        resistance=resistance,
        capacitance=capacitance,
        tap_index=taps,
        driver_resistance=driver_resistance,
        total_capacitance=sum(capacitance),
    )


class TestElmoreDelay:
    def test_two_stage_ladder_matches_hand_calculation(self):
        # Elmore at far node = Rdrv*(C1+C2) + R1*(C1+C2) + R2*C2  (in ohm*fF -> /1000 ps)
        network = ladder()
        expected = (100.0 * 300.0 + 50.0 * 300.0 + 50.0 * 200.0) / 1000.0
        delays = elmore_stage_delays(network)
        assert delays[101] == pytest.approx(expected)

    def test_driver_resistance_contribution(self):
        base = elmore_stage_delays(ladder(driver_resistance=100.0))[101]
        stronger = elmore_stage_delays(ladder(driver_resistance=50.0))[101]
        assert stronger == pytest.approx(base - 50.0 * 300.0 / 1000.0)

    def test_far_node_slower_than_near_node(self):
        network = ladder()
        network.tap_index = {1: 1, 2: 2}
        delays = elmore_stage_delays(network)
        assert delays[2] > delays[1]

    def test_more_capacitance_means_more_delay(self):
        light = elmore_stage_delays(ladder(stages=((50.0, 100.0), (50.0, 100.0))))[101]
        heavy = elmore_stage_delays(ladder(stages=((50.0, 100.0), (50.0, 400.0))))[101]
        assert heavy > light


class TestElmoreSlew:
    def test_step_input_slew_is_ln9_tau(self):
        network = ladder()
        timing = elmore_stage_timing(network, input_slew=0.0)
        assert timing.slew[101] == pytest.approx(LN9 * timing.delay[101])

    def test_peri_combination_with_input_slew(self):
        network = ladder()
        step = elmore_stage_timing(network, input_slew=0.0).slew[101]
        combined = elmore_stage_timing(network, input_slew=40.0).slew[101]
        assert combined == pytest.approx((step**2 + 40.0**2) ** 0.5)

    def test_slew_monotone_in_input_slew(self):
        network = ladder()
        slews = [elmore_stage_timing(network, s).slew[101] for s in (0.0, 20.0, 60.0)]
        assert slews[0] < slews[1] < slews[2]
