"""Tests for the Monte Carlo variation engine (repro.analysis.variation).

The central property is *nominal parity*: a zero-variance model must make
``evaluate_yield`` reproduce the nominal multi-corner ``evaluate`` results
bit-for-bit, for both analytical engines, on any tree -- that is what makes
the batched Monte Carlo path trustworthy as an extension of the evaluator
rather than a parallel implementation that can drift.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import (
    ClockNetworkEvaluator,
    EvaluatorConfig,
    VariationModel,
    YieldReport,
    default_variation_model,
    driver_scale_for_vdd,
    ispd09_corners,
    supply_driver_multiplier,
)
from repro.analysis.corners import Corner
from repro.core import ContangoFlow, FlowConfig
from repro.seeding import derive_rng, derive_seed
from repro.testing import make_manual_tree, make_small_instance


@pytest.fixture(scope="module")
def optimized_tree():
    """A realistically buffered tree (full Contango flow on 24 sinks)."""
    instance = make_small_instance(sink_count=24)
    result = ContangoFlow(FlowConfig(engine="arnoldi")).run(instance)
    return instance, result.require_tree()


def _evaluator(instance, engine="arnoldi"):
    return ClockNetworkEvaluator(
        config=EvaluatorConfig(engine=engine, slew_limit=instance.slew_limit),
        capacitance_limit=instance.capacitance_limit,
    )


# ----------------------------------------------------------------------
# Corner helpers
# ----------------------------------------------------------------------
class TestCornerScaled:
    def test_voltage_rescale_round_trips_the_ispd09_pair(self):
        fast, slow = ispd09_corners()
        derived = fast.scaled(voltage=slow.vdd)
        assert derived.vdd == slow.vdd
        assert derived.driver_scale == slow.driver_scale

    def test_wire_multiplier_scales_both_parasitics(self):
        corner = ispd09_corners()[0].scaled(wire=1.1)
        assert corner.wire_res_scale == pytest.approx(1.1)
        assert corner.wire_cap_scale == pytest.approx(1.1)

    def test_driver_multiplier_composes_with_voltage(self):
        fast = ispd09_corners()[0]
        derived = fast.scaled(voltage=1.0, driver=1.2)
        assert derived.driver_scale == pytest.approx(
            driver_scale_for_vdd(1.0) * 1.2
        )

    def test_name_is_derived_unless_given(self):
        fast = ispd09_corners()[0]
        assert "1V" in fast.scaled(voltage=1.0).name
        assert fast.scaled(voltage=1.0, name="custom").name == "custom"

    def test_supply_multiplier_is_exactly_one_at_zero_shift(self):
        mult = supply_driver_multiplier(1.2, np.zeros((3, 4)))
        assert mult.shape == (3, 4)
        assert np.all(mult == 1.0)

    def test_supply_multiplier_monotone_in_shift(self):
        shifts = np.array([-0.1, 0.0, 0.1])
        mult = supply_driver_multiplier(1.2, shifts)
        assert mult[0] > 1.0 > mult[2]


# ----------------------------------------------------------------------
# VariationModel sampling
# ----------------------------------------------------------------------
class TestVariationModel:
    def test_rejects_unknown_family_and_negative_sigma(self):
        with pytest.raises(ValueError, match="family"):
            VariationModel(family="magic")
        with pytest.raises(ValueError, match="non-negative"):
            VariationModel(driver_sigma=-0.1)

    def test_corner_anchored_requires_anchors(self):
        with pytest.raises(ValueError, match="anchor"):
            VariationModel(family="corner_anchored")

    def test_sample_shapes_and_positivity(self):
        model = default_variation_model()
        draws = model.sample(50, derive_rng(1), n_stages=7)
        for array in (draws.driver, draws.wire_res, draws.wire_cap, draws.vdd_shift):
            assert array.shape == (50, 7)
        assert np.all(draws.driver > 0)
        assert np.all(draws.wire_res > 0)
        assert np.all(draws.wire_cap > 0)

    def test_huge_sigma_multipliers_stay_physical(self):
        # sigma > 1/truncation would otherwise drive multipliers negative
        # (negative driver resistance -> garbage moments).
        model = VariationModel(
            driver_sigma=0.6, wire_res_sigma=0.6, wire_cap_sigma=0.6
        )
        draws = model.sample(2000, derive_rng(9), n_stages=4)
        assert np.all(draws.driver > 0)
        assert np.all(draws.wire_res > 0)
        assert np.all(draws.wire_cap > 0)

    def test_correlated_transform_is_cached_per_geometry(self):
        model = VariationModel(family="correlated", driver_sigma=0.05)
        positions = np.array([[0.0, 0.0], [100.0, 0.0], [0.0, 100.0]])
        first = model._spatial_transform(positions)
        second = model._spatial_transform(positions)
        assert second is first  # same object: no O(n^3) recompute
        moved = model._spatial_transform(positions + 1.0)
        assert moved is not first

    def test_sampling_is_deterministic_per_seed(self):
        model = default_variation_model()
        a = model.sample(20, derive_rng(3), n_stages=5)
        b = model.sample(20, derive_rng(3), n_stages=5)
        c = model.sample(20, derive_rng(4), n_stages=5)
        assert np.array_equal(a.driver, b.driver)
        assert np.array_equal(a.vdd_shift, b.vdd_shift)
        assert not np.array_equal(a.driver, c.driver)

    def test_correlated_family_tracks_distance(self):
        # Two nearly-coincident stages vs. one far away: the near pair's
        # perturbations must correlate much more strongly across samples.
        model = VariationModel(
            family="correlated",
            driver_sigma=0.05,
            correlation_length=500.0,
            global_fraction=0.0,
        )
        positions = np.array([[0.0, 0.0], [10.0, 0.0], [50_000.0, 0.0]])
        draws = model.sample(4000, derive_rng(5), positions=positions)
        corr = np.corrcoef(draws.driver.T)
        assert corr[0, 1] > 0.9
        assert abs(corr[0, 2]) < 0.2

    def test_correlated_family_needs_positions(self):
        model = VariationModel(family="correlated", driver_sigma=0.05)
        with pytest.raises(ValueError, match="positions"):
            model.sample(5, derive_rng(0), n_stages=3)

    def test_from_corners_round_trips_ispd09(self):
        corners = ispd09_corners()
        model = VariationModel.from_corners(corners)
        fast = max(corners, key=lambda c: c.vdd)
        slow = min(corners, key=lambda c: c.vdd)
        assert model.anchor_corner(0.0) == fast
        assert model.anchor_corner(1.0) == slow
        midpoint = model.anchor_corner(0.5)
        assert fast.driver_scale < midpoint.driver_scale < slow.driver_scale

    def test_anchored_multipliers_stay_inside_the_anchor_span(self):
        model = VariationModel.from_corners(ispd09_corners())
        draws = model.sample(500, derive_rng(6), n_stages=3)
        fast, slow = model.anchors
        ratio_max = slow.driver_scale / fast.driver_scale
        assert np.all(draws.driver >= 1.0 - 1e-12)
        assert np.all(draws.driver <= ratio_max + 1e-12)
        # The anchored component is chip-global: identical across stages.
        assert np.array_equal(draws.driver[:, 0], draws.driver[:, 1])
        assert np.all(draws.vdd_shift == 0.0)

    def test_perturbs_wire_cap_flag(self):
        assert not VariationModel().perturbs_wire_cap
        assert VariationModel(wire_cap_sigma=0.01).perturbs_wire_cap
        anchored = VariationModel.from_corners(
            [Corner("a", vdd=1.2), Corner("b", vdd=1.0, wire_cap_scale=1.1)]
        )
        assert anchored.perturbs_wire_cap


# ----------------------------------------------------------------------
# Zero-variance parity with the nominal evaluator
# ----------------------------------------------------------------------
class TestZeroVarianceParity:
    @pytest.mark.parametrize("engine", ["arnoldi", "elmore"])
    def test_flow_tree_parity_bit_for_bit(self, optimized_tree, engine):
        instance, tree = optimized_tree
        evaluator = _evaluator(instance, engine)
        nominal = evaluator.evaluate(tree)
        report = evaluator.evaluate_yield(tree, VariationModel(), samples=3, seed=0)
        assert np.all(report.skew_samples == nominal.skew)
        assert np.all(report.clr_samples == nominal.clr)
        assert np.all(report.worst_slew_samples == nominal.worst_slew)

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        samples=st.integers(min_value=1, max_value=6),
        family=st.sampled_from(["independent", "correlated"]),
        engine=st.sampled_from(["arnoldi", "elmore"]),
    )
    def test_property_zero_variance_reproduces_nominal(
        self, seed, samples, family, engine
    ):
        tree = make_manual_tree()
        evaluator = ClockNetworkEvaluator(config=EvaluatorConfig(engine=engine))
        nominal = evaluator.evaluate(tree)
        model = VariationModel(family=family)
        report = evaluator.evaluate_yield(tree, model, samples=samples, seed=seed)
        assert report.n_samples == samples
        assert np.all(report.skew_samples == nominal.skew)
        assert np.all(report.clr_samples == nominal.clr)
        assert np.all(report.worst_slew_samples == nominal.worst_slew)

    def test_yield_order_does_not_change_nominal_results(self, optimized_tree):
        # evaluate -> evaluate_yield -> evaluate must return identical
        # nominal reports even though the yield pass shares the stage cache.
        instance, tree = optimized_tree
        evaluator = _evaluator(instance)
        before = evaluator.evaluate(tree)
        evaluator.evaluate_yield(tree, default_variation_model(), samples=64, seed=1)
        after = evaluator.evaluate(tree)
        assert before.skew == after.skew
        assert before.clr == after.clr
        assert before.worst_slew == after.worst_slew

    def test_spice_engine_is_rejected(self, optimized_tree):
        instance, tree = optimized_tree
        evaluator = ClockNetworkEvaluator(
            config=EvaluatorConfig(engine="spice", slew_limit=instance.slew_limit)
        )
        with pytest.raises(ValueError, match="analytical engine"):
            evaluator.evaluate_yield(tree, VariationModel(), samples=2)


# ----------------------------------------------------------------------
# Yield evaluation behavior under real variance
# ----------------------------------------------------------------------
class TestEvaluateYield:
    def test_seeded_runs_are_bit_reproducible(self, optimized_tree):
        instance, tree = optimized_tree
        model = default_variation_model()
        a = _evaluator(instance).evaluate_yield(tree, model, samples=128, seed=42)
        b = _evaluator(instance).evaluate_yield(tree, model, samples=128, seed=42)
        c = _evaluator(instance).evaluate_yield(tree, model, samples=128, seed=43)
        assert np.array_equal(a.skew_samples, b.skew_samples)
        assert np.array_equal(a.clr_samples, b.clr_samples)
        assert not np.array_equal(a.skew_samples, c.skew_samples)

    def test_variation_widens_the_distribution(self, optimized_tree):
        instance, tree = optimized_tree
        evaluator = _evaluator(instance)
        nominal = evaluator.evaluate(tree)
        report = evaluator.evaluate_yield(
            tree, default_variation_model(), samples=512, seed=2
        )
        assert report.skew_std > 0.0
        assert report.skew_p99 >= report.skew_p95 >= report.skew_mean
        assert report.skew_max > nominal.skew
        assert 0.0 <= report.skew_yield <= 1.0
        assert report.yield_at(float("inf")) == 1.0

    def test_yield_counts_stay_out_of_nominal_run_count(self, optimized_tree):
        instance, tree = optimized_tree
        evaluator = _evaluator(instance)
        evaluator.evaluate(tree)
        runs_before = evaluator.run_count
        evaluator.evaluate_yield(tree, default_variation_model(), samples=32, seed=3)
        assert evaluator.run_count == runs_before
        assert evaluator.yield_run_count == 1

    def test_yield_reuses_cached_base_moments(self, optimized_tree):
        instance, tree = optimized_tree
        evaluator = _evaluator(instance)
        model = VariationModel(driver_sigma=0.05)  # no wire-cap perturbation
        evaluator.evaluate_yield(tree, model, samples=16, seed=4)
        first_pass = evaluator.cache_stats()
        evaluator.evaluate_yield(tree, model, samples=16, seed=5)
        second_pass = evaluator.cache_stats()
        # The second run re-reduced nothing: only hits moved.
        assert second_pass["misses"] == first_pass["misses"]
        assert second_pass["hits"] > first_pass["hits"]
        assert second_pass["base_moments"] == first_pass["base_moments"]

    def test_summary_is_json_compatible(self, optimized_tree):
        import json

        instance, tree = optimized_tree
        report = _evaluator(instance).evaluate_yield(
            tree, default_variation_model(), samples=32, seed=6
        )
        payload = json.dumps(report.summary())
        assert "skew_p95_ps" in payload
        assert isinstance(report, YieldReport)

    def test_rejects_bad_sample_count(self, optimized_tree):
        instance, tree = optimized_tree
        with pytest.raises(ValueError, match="samples"):
            _evaluator(instance).evaluate_yield(tree, VariationModel(), samples=0)


# ----------------------------------------------------------------------
# Seed derivation
# ----------------------------------------------------------------------
class TestSeeding:
    def test_derive_rng_is_deterministic_and_key_sensitive(self):
        a = derive_rng(7, "job", 1).standard_normal(4)
        b = derive_rng(7, "job", 1).standard_normal(4)
        c = derive_rng(7, "job", 2).standard_normal(4)
        d = derive_rng(8, "job", 1).standard_normal(4)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)
        assert not np.array_equal(a, d)

    def test_derive_seed_stability(self):
        assert derive_seed(7, "x") == derive_seed(7, "x")
        assert derive_seed(7, "x") != derive_seed(7, "y")

    def test_none_seed_falls_back_to_default(self):
        from repro.seeding import DEFAULT_SEED

        assert derive_seed(None, "k") == derive_seed(DEFAULT_SEED, "k")
