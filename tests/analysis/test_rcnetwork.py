"""Tests for stage extraction and RC-network construction."""

import pytest

from repro.analysis.corners import Corner
from repro.analysis.rcnetwork import build_stage_network, extract_stages
from repro.cts import ClockTree, Sink, ispd09_buffer_library, ispd09_wire_library
from repro.geometry import Point

WIRES = ispd09_wire_library()
BUFS = ispd09_buffer_library()


def buffered_chain_tree():
    """source -- 500um -- [8X INV_S] -- 500um -- sink(30fF), plus a direct sink."""
    tree = ClockTree(Point(0, 0), source_resistance=100.0, default_wire=WIRES.widest)
    mid = tree.add_internal(tree.root_id, Point(500, 0))
    tree.place_buffer(mid, BUFS.by_name("INV_S").parallel(8))
    tree.add_sink(mid, Point(1000, 0), Sink("far", 30.0))
    tree.add_sink(tree.root_id, Point(0, 200), Sink("near", 10.0))
    return tree, mid


class TestStageExtraction:
    def test_stage_count_is_buffers_plus_one(self):
        tree, _ = buffered_chain_tree()
        stages = extract_stages(tree)
        assert len(stages) == 2

    def test_source_stage_comes_first(self):
        tree, mid = buffered_chain_tree()
        stages = extract_stages(tree)
        assert stages[0].driver_id == tree.root_id
        assert stages[0].driver_buffer is None
        assert stages[1].driver_id == mid

    def test_source_stage_taps_are_buffer_input_and_near_sink(self):
        tree, mid = buffered_chain_tree()
        stage = extract_stages(tree)[0]
        near_sink = [n.node_id for n in tree.sinks() if n.sink.name == "near"][0]
        assert set(stage.taps) == {mid, near_sink}

    def test_driver_ordering_parent_before_child(self):
        tree, _ = buffered_chain_tree()
        stages = extract_stages(tree)
        seen = set()
        for stage in stages:
            if stage.driver_buffer is not None:
                # The driving stage must already have been emitted.
                assert any(stage.driver_id in s.taps for s in stages if id(s) != id(stage))
            seen.add(stage.driver_id)

    def test_every_edge_assigned_to_exactly_one_stage(self):
        tree, _ = buffered_chain_tree()
        stages = extract_stages(tree)
        edges = [e for stage in stages for e in stage.edges]
        expected = [n.node_id for n in tree.nodes() if n.parent is not None]
        assert sorted(edges) == sorted(expected)


class TestStageNetwork:
    def test_total_capacitance_accounts_for_wire_and_loads(self):
        tree, mid = buffered_chain_tree()
        stage = extract_stages(tree)[0]
        network = build_stage_network(tree, stage)
        wire_cap = WIRES.widest.capacitance(500.0) + WIRES.widest.capacitance(200.0)
        loads = BUFS.by_name("INV_S").parallel(8).input_cap + 10.0
        assert network.total_capacitance == pytest.approx(wire_cap + loads, rel=1e-6)

    def test_driver_output_cap_added_for_buffer_stages(self):
        tree, mid = buffered_chain_tree()
        stage = extract_stages(tree)[1]
        network = build_stage_network(tree, stage)
        buffer = BUFS.by_name("INV_S").parallel(8)
        wire_cap = WIRES.widest.capacitance(500.0)
        assert network.total_capacitance == pytest.approx(wire_cap + buffer.output_cap + 30.0, rel=1e-6)

    def test_taps_are_indexed(self):
        tree, mid = buffered_chain_tree()
        stage = extract_stages(tree)[0]
        network = build_stage_network(tree, stage)
        assert set(stage.taps) == set(network.tap_index)

    def test_long_edges_are_segmented(self):
        tree, _ = buffered_chain_tree()
        stage = extract_stages(tree)[0]
        coarse = build_stage_network(tree, stage, max_segment_length=1000.0)
        fine = build_stage_network(tree, stage, max_segment_length=50.0)
        assert fine.size > coarse.size
        assert fine.total_capacitance == pytest.approx(coarse.total_capacitance, rel=1e-9)

    def test_corner_scales_driver_resistance(self):
        tree, _ = buffered_chain_tree()
        stage = extract_stages(tree)[0]
        nominal = build_stage_network(tree, stage)
        slow = build_stage_network(tree, stage, corner=Corner("slow", 1.0, driver_scale=1.5))
        assert slow.driver_resistance == pytest.approx(1.5 * nominal.driver_resistance)

    def test_rise_fall_asymmetry(self):
        tree, _ = buffered_chain_tree()
        stage = extract_stages(tree)[0]
        rise = build_stage_network(tree, stage, rise=True)
        fall = build_stage_network(tree, stage, rise=False)
        assert rise.driver_resistance > fall.driver_resistance

    def test_downstream_capacitance_root_equals_total(self):
        tree, _ = buffered_chain_tree()
        stage = extract_stages(tree)[0]
        network = build_stage_network(tree, stage)
        downstream = network.downstream_capacitance()
        assert downstream[0] == pytest.approx(network.total_capacitance, rel=1e-9)

    def test_children_lists_consistent_with_parents(self):
        tree, _ = buffered_chain_tree()
        network = build_stage_network(tree, extract_stages(tree)[0])
        children = network.children_lists()
        for child, parent in enumerate(network.parent):
            if parent >= 0:
                assert child in children[parent]
