"""Tests for the moment-matching (Arnoldi-style) engine."""

import pytest

from repro.analysis.arnoldi import arnoldi_stage_timing, stage_moments
from repro.analysis.elmore import elmore_stage_delays
from repro.analysis.rcnetwork import StageNetwork
from repro.analysis.units import LN2


def single_pole(resistance=100.0, capacitance=500.0):
    """One R, one C: the transfer function is exactly a single pole."""
    return StageNetwork(
        parent=[-1],
        resistance=[0.0],
        capacitance=[capacitance],
        tap_index={7: 0},
        driver_resistance=resistance,
        total_capacitance=capacitance,
    )


def ladder():
    return StageNetwork(
        parent=[-1, 0, 1],
        resistance=[0.0, 80.0, 120.0],
        capacitance=[50.0, 150.0, 250.0],
        tap_index={42: 2},
        driver_resistance=60.0,
        total_capacitance=450.0,
    )


class TestMoments:
    def test_first_moment_equals_elmore(self):
        network = ladder()
        m1, _ = stage_moments(network)
        elmore = elmore_stage_delays(network)
        assert m1[2] == pytest.approx(elmore[42])

    def test_single_pole_second_moment(self):
        # For a single pole, m2 = m1^2.
        network = single_pole()
        m1, m2 = stage_moments(network)
        assert m2[0] == pytest.approx(m1[0] ** 2)

    def test_moments_increase_downstream(self):
        m1, m2 = stage_moments(ladder())
        assert m1[0] < m1[1] < m1[2]
        assert m2[0] < m2[1] < m2[2]


class TestD2MDelay:
    def test_single_pole_delay_is_ln2_tau(self):
        network = single_pole()
        timing = arnoldi_stage_timing(network, input_slew=0.0)
        tau = 100.0 * 500.0 / 1000.0
        assert timing.delay[7] == pytest.approx(LN2 * tau, rel=1e-6)

    def test_delay_never_exceeds_elmore(self):
        network = ladder()
        timing = arnoldi_stage_timing(network, input_slew=0.0)
        assert timing.delay[42] <= elmore_stage_delays(network)[42] + 1e-9

    def test_resistive_shielding_reduces_delay_estimate(self):
        # On a shielded ladder D2M is strictly below Elmore.
        network = ladder()
        timing = arnoldi_stage_timing(network, input_slew=0.0)
        assert timing.delay[42] < elmore_stage_delays(network)[42]

    def test_slew_combines_input_transition(self):
        network = ladder()
        fast_in = arnoldi_stage_timing(network, input_slew=0.0).slew[42]
        slow_in = arnoldi_stage_timing(network, input_slew=80.0).slew[42]
        assert slow_in > fast_in
