"""Tests for the transient RC solver against analytic single-pole responses."""

import math

import pytest

from repro.analysis.rcnetwork import StageNetwork
from repro.analysis.spice import TransientSolverConfig, transient_stage_timing
from repro.analysis.units import LN2, LN9


def single_pole(resistance=200.0, capacitance=400.0):
    return StageNetwork(
        parent=[-1],
        resistance=[0.0],
        capacitance=[capacitance],
        tap_index={1: 0},
        driver_resistance=resistance,
        total_capacitance=capacitance,
    )


def ladder():
    return StageNetwork(
        parent=[-1, 0, 1],
        resistance=[0.0, 100.0, 100.0],
        capacitance=[100.0, 200.0, 300.0],
        tap_index={5: 2},
        driver_resistance=80.0,
        total_capacitance=600.0,
    )


class TestSolverConfig:
    def test_invalid_steps(self):
        with pytest.raises(ValueError):
            TransientSolverConfig(steps=5)

    def test_invalid_horizon(self):
        with pytest.raises(ValueError):
            TransientSolverConfig(horizon_factor=0.5)


class TestSinglePoleAccuracy:
    def test_delay_matches_ln2_tau_for_fast_ramp(self):
        network = single_pole()
        tau = 200.0 * 400.0 / 1000.0  # 80 ps
        timing = transient_stage_timing(network, input_slew=1.0)
        assert timing.delay[1] == pytest.approx(LN2 * tau, rel=0.05)

    def test_slew_matches_ln9_tau_for_fast_ramp(self):
        network = single_pole()
        tau = 80.0
        timing = transient_stage_timing(network, input_slew=1.0)
        assert timing.slew[1] == pytest.approx(LN9 * tau, rel=0.08)

    def test_slower_input_ramp_increases_delay_and_slew(self):
        network = single_pole()
        fast = transient_stage_timing(network, input_slew=1.0)
        slow = transient_stage_timing(network, input_slew=100.0)
        assert slow.delay[1] > fast.delay[1]
        assert slow.slew[1] > fast.slew[1]

    def test_vdd_does_not_change_relative_timing(self):
        network = single_pole()
        low = transient_stage_timing(network, input_slew=10.0, vdd=1.0)
        high = transient_stage_timing(network, input_slew=10.0, vdd=1.2)
        assert low.delay[1] == pytest.approx(high.delay[1], rel=1e-3)


class TestLadderBehaviour:
    def test_transient_delay_below_elmore(self):
        from repro.analysis.elmore import elmore_stage_delays

        network = ladder()
        timing = transient_stage_timing(network, input_slew=5.0)
        assert timing.delay[5] < elmore_stage_delays(network)[5]

    def test_finer_time_step_converges(self):
        network = ladder()
        coarse = transient_stage_timing(
            network, input_slew=5.0, config=TransientSolverConfig(steps=150)
        )
        fine = transient_stage_timing(
            network, input_slew=5.0, config=TransientSolverConfig(steps=1200)
        )
        assert coarse.delay[5] == pytest.approx(fine.delay[5], rel=0.02)

    def test_stronger_driver_is_faster(self):
        weak = transient_stage_timing(ladder(), input_slew=5.0)
        strong_net = ladder()
        strong_net.driver_resistance = 20.0
        strong = transient_stage_timing(strong_net, input_slew=5.0)
        assert strong.delay[5] < weak.delay[5]

    def test_all_taps_reported(self):
        network = ladder()
        network.tap_index = {5: 2, 6: 1}
        timing = transient_stage_timing(network, input_slew=5.0)
        assert set(timing.delay) == {5, 6}
        assert timing.delay[6] < timing.delay[5]
