"""Tests for process/voltage corners."""

import pytest

from repro.analysis.corners import Corner, driver_scale_for_vdd, ispd09_corners, nominal_corner


class TestCorner:
    def test_invalid_vdd(self):
        with pytest.raises(ValueError):
            Corner("bad", vdd=0.0)

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            Corner("bad", vdd=1.0, driver_scale=0.0)

    def test_nominal_corner_is_unit_scale(self):
        corner = nominal_corner()
        assert corner.vdd == 1.2
        assert corner.driver_scale == 1.0


class TestSupplyScaling:
    def test_scale_is_one_at_nominal(self):
        assert driver_scale_for_vdd(1.2) == pytest.approx(1.0)

    def test_lower_supply_is_slower(self):
        assert driver_scale_for_vdd(1.0) > 1.0

    def test_higher_supply_is_faster(self):
        assert driver_scale_for_vdd(1.3) < 1.0

    def test_subthreshold_supply_rejected(self):
        with pytest.raises(ValueError):
            driver_scale_for_vdd(0.2)

    def test_low_corner_slowdown_is_moderate(self):
        # Calibrated to roughly +10% so that CLR lands an order of magnitude
        # above the optimized skew, as in the paper's tables.
        scale = driver_scale_for_vdd(1.0)
        assert 1.05 < scale < 1.2


class TestIspd09Corners:
    def test_two_supply_corners(self):
        corners = ispd09_corners()
        assert len(corners) == 2
        assert {c.vdd for c in corners} == {1.2, 1.0}

    def test_slow_corner_has_larger_driver_scale(self):
        fast, slow = sorted(ispd09_corners(), key=lambda c: -c.vdd)
        assert slow.driver_scale > fast.driver_scale
