"""Tests for the full clock-network evaluator (latency, skew, CLR, slews)."""

import pytest

from repro.analysis import ClockNetworkEvaluator, EvaluatorConfig, ispd09_corners
from repro.cts import ClockTree, Sink, ispd09_buffer_library, ispd09_wire_library
from repro.geometry import Point

from repro.testing import make_manual_tree, make_zst_tree

WIRES = ispd09_wire_library()
BUFS = ispd09_buffer_library()


class TestConfig:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            EvaluatorConfig(engine="hspice")

    def test_invalid_slew_limit(self):
        with pytest.raises(ValueError):
            EvaluatorConfig(slew_limit=0.0)

    def test_evaluator_requires_corners(self):
        with pytest.raises(ValueError):
            ClockNetworkEvaluator(corners=[])


class TestBasicEvaluation:
    def test_report_contains_all_corners(self, fast_evaluator, manual_tree):
        report = fast_evaluator.evaluate(manual_tree)
        assert set(report.corners) == {c.name for c in ispd09_corners()}

    def test_every_sink_has_rise_and_fall_latency(self, fast_evaluator, manual_tree):
        report = fast_evaluator.evaluate(manual_tree)
        timing = report.nominal
        assert set(timing.latency) == {n.node_id for n in manual_tree.sinks()}
        for per_sink in timing.latency.values():
            assert set(per_sink) == {"rise", "fall"}

    def test_latencies_positive_and_ordered(self, fast_evaluator, manual_tree):
        report = fast_evaluator.evaluate(manual_tree)
        timing = report.nominal
        assert all(v > 0 for per in timing.latency.values() for v in per.values())
        assert timing.max_latency() >= timing.min_latency()

    def test_skew_is_max_minus_min(self, fast_evaluator, manual_tree):
        report = fast_evaluator.evaluate(manual_tree)
        timing = report.nominal
        rise = [v["rise"] for v in timing.latency.values()]
        fall = [v["fall"] for v in timing.latency.values()]
        expected = max(max(rise) - min(rise), max(fall) - min(fall))
        assert report.skew == pytest.approx(expected)

    def test_run_count_increments(self, fast_evaluator, manual_tree):
        assert fast_evaluator.run_count == 0
        fast_evaluator.evaluate(manual_tree)
        fast_evaluator.evaluate(manual_tree)
        assert fast_evaluator.run_count == 2

    def test_summary_keys(self, fast_evaluator, manual_tree):
        summary = fast_evaluator.evaluate(manual_tree).summary()
        assert {"skew_ps", "clr_ps", "max_latency_ps", "worst_slew_ps"} <= set(summary)


class TestClrAndCorners:
    def test_clr_exceeds_skew(self, fast_evaluator, manual_tree):
        report = fast_evaluator.evaluate(manual_tree)
        assert report.clr > report.skew

    def test_slow_corner_latency_larger(self, fast_evaluator, manual_tree):
        report = fast_evaluator.evaluate(manual_tree)
        assert (
            report.corners[report.slow_corner].max_latency()
            > report.corners[report.fast_corner].max_latency()
        )

    def test_single_corner_clr_equals_skew_roughly(self, manual_tree):
        from repro.analysis.corners import nominal_corner

        evaluator = ClockNetworkEvaluator(
            EvaluatorConfig(engine="arnoldi"), corners=[nominal_corner()]
        )
        report = evaluator.evaluate(manual_tree)
        assert report.clr == pytest.approx(report.skew, abs=1e-9)


class TestPolarityAndTransitions:
    def test_inverter_chain_swaps_rise_and_fall(self):
        """With one inverter, a rising launch arrives falling at the sink."""
        tree = ClockTree(Point(0, 0), source_resistance=50.0, default_wire=WIRES.widest)
        mid = tree.add_internal(tree.root_id, Point(300, 0))
        tree.place_buffer(mid, BUFS.by_name("INV_S").parallel(8))
        sink = tree.add_sink(mid, Point(600, 0), Sink("s", 20.0))
        evaluator = ClockNetworkEvaluator(EvaluatorConfig(engine="arnoldi"))
        report = evaluator.evaluate(tree)
        timing = report.nominal
        # Pull-up is weaker than pull-down, so the rising arrival at the sink
        # (driven by the inverter's pull-up) is the slower one.
        assert timing.latency[sink]["rise"] != timing.latency[sink]["fall"]


class TestSlewChecks:
    def test_long_unbuffered_wire_violates_slew(self):
        tree = ClockTree(Point(0, 0), source_resistance=200.0, default_wire=WIRES.widest)
        tree.add_sink(tree.root_id, Point(6000, 0), Sink("far", 100.0))
        evaluator = ClockNetworkEvaluator(EvaluatorConfig(engine="arnoldi", slew_limit=100.0))
        report = evaluator.evaluate(tree)
        assert report.has_slew_violation
        assert report.worst_slew > 100.0

    def test_well_buffered_tree_is_clean(self, fast_evaluator, manual_tree):
        report = fast_evaluator.evaluate(manual_tree)
        assert not report.has_slew_violation

    def test_capacitance_limit_flag(self, manual_tree):
        tight = ClockNetworkEvaluator(EvaluatorConfig(engine="arnoldi"), capacitance_limit=10.0)
        loose = ClockNetworkEvaluator(EvaluatorConfig(engine="arnoldi"), capacitance_limit=1e9)
        assert not tight.evaluate(manual_tree).within_capacitance_limit
        assert loose.evaluate(manual_tree).within_capacitance_limit
        assert tight.evaluate(manual_tree).capacitance_utilization > 1.0


class TestEngineConsistency:
    def test_arnoldi_and_spice_agree_on_buffered_tree(self):
        tree = make_manual_tree()
        arnoldi = ClockNetworkEvaluator(EvaluatorConfig(engine="arnoldi")).evaluate(tree)
        spice = ClockNetworkEvaluator(EvaluatorConfig(engine="spice")).evaluate(tree)
        assert arnoldi.max_latency == pytest.approx(spice.max_latency, rel=0.15)
        assert arnoldi.worst_slew == pytest.approx(spice.worst_slew, rel=0.2)

    def test_elmore_is_pessimistic(self):
        tree = make_zst_tree(sink_count=16)
        elmore = ClockNetworkEvaluator(EvaluatorConfig(engine="elmore")).evaluate(tree)
        spice = ClockNetworkEvaluator(EvaluatorConfig(engine="spice")).evaluate(tree)
        assert elmore.max_latency >= spice.max_latency

    def test_zst_tree_has_small_skew_under_spice(self):
        tree = make_zst_tree(sink_count=20)
        report = ClockNetworkEvaluator(EvaluatorConfig(engine="spice")).evaluate(tree)
        # The unbuffered DME tree is Elmore-balanced; accurate analysis sees a
        # small but non-zero skew, far below the latency scale.
        assert report.skew < 0.05 * report.max_latency
