"""Property tests for dirty-region timing propagation.

The dirty-region contract is stricter than the stage cache's: an incremental
``evaluate()`` that re-propagates only the dirty frontier must be
**bit-identical** to a cold evaluation of the same tree by a fresh evaluator
-- every latency, slew and tap-slew float, and the ``summary()`` dict, with
no tolerance at all.  The hypothesis suite drives arbitrary journaled
mutation sequences through the evaluator to pin that down; the stats tests
pin the partial/full propagation attribution counters the benchmarks rely
on.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import ClockNetworkEvaluator, EvaluatorConfig
from tests.analysis.test_incremental import buffered_zst_tree, random_mutation


def assert_reports_bit_identical(actual, expected):
    """Exact float equality of two evaluation reports (no tolerance)."""
    assert set(actual.corners) == set(expected.corners)
    for name in expected.corners:
        got, want = actual.corners[name], expected.corners[name]
        assert got.latency == want.latency
        assert got.slew == want.slew
        assert got.tap_slew == want.tap_slew
    assert actual.summary() == expected.summary()


def check_sequence(engine, steps, seed, dirty_region=True, use_cache=True):
    """Apply ``steps`` seeded mutations; assert incremental == cold each time."""
    tree = buffered_zst_tree()
    evaluator = ClockNetworkEvaluator(
        EvaluatorConfig(engine=engine, dirty_region=dirty_region)
    )
    evaluator.evaluate(tree, incremental=use_cache)
    rng = random.Random(seed)
    for step in range(steps):
        description = random_mutation(tree, rng)
        incremental = evaluator.evaluate(tree, incremental=use_cache)
        cold = ClockNetworkEvaluator(EvaluatorConfig(engine=engine)).evaluate(
            tree, incremental=False
        )
        try:
            assert_reports_bit_identical(incremental, cold)
        except AssertionError as err:  # pragma: no cover - diagnostics
            raise AssertionError(f"step {step}: {description}: {err}") from err


class TestMutationSequencesBitIdentical:
    @settings(max_examples=12, deadline=None)
    @given(steps=st.integers(min_value=1, max_value=6), seed=st.integers(0, 2**16))
    def test_arnoldi(self, steps, seed):
        check_sequence("arnoldi", steps, seed)

    @settings(max_examples=12, deadline=None)
    @given(steps=st.integers(min_value=1, max_value=6), seed=st.integers(0, 2**16))
    def test_elmore(self, steps, seed):
        check_sequence("elmore", steps, seed)

    @settings(max_examples=4, deadline=None)
    @given(steps=st.integers(min_value=1, max_value=3), seed=st.integers(0, 2**16))
    def test_spice(self, steps, seed):
        check_sequence("spice", steps, seed)

    @settings(max_examples=6, deadline=None)
    @given(steps=st.integers(min_value=1, max_value=4), seed=st.integers(0, 2**16))
    def test_dirty_region_disabled(self, steps, seed):
        check_sequence("arnoldi", steps, seed, dirty_region=False)

    @settings(max_examples=6, deadline=None)
    @given(steps=st.integers(min_value=1, max_value=4), seed=st.integers(0, 2**16))
    def test_cache_bypassed(self, steps, seed):
        check_sequence("arnoldi", steps, seed, use_cache=False)


class TestDirtyRegionStats:
    def warm_evaluator(self, dirty_region=True):
        tree = buffered_zst_tree()
        evaluator = ClockNetworkEvaluator(
            EvaluatorConfig(engine="arnoldi", dirty_region=dirty_region)
        )
        evaluator.evaluate(tree)
        return tree, evaluator

    def test_first_evaluation_is_full(self):
        _, evaluator = self.warm_evaluator()
        stats = evaluator.cache_stats()
        assert stats["propagations_full"] == 1
        assert stats["propagations_partial"] == 0
        assert stats["stages_propagated"] == stats["stages_total"]

    def test_localized_edit_propagates_a_strict_subset(self):
        tree, evaluator = self.warm_evaluator()
        total = evaluator.cache_stats()["stages_total"]
        sink = tree.sinks()[0].node_id
        tree.add_snake(sink, 25.0)
        evaluator.evaluate(tree)
        stats = evaluator.cache_stats()
        assert stats["propagations_partial"] == 1
        # Only the touched stage (a leaf of the stage DAG) was re-propagated.
        assert stats["stages_propagated"] - total == 1

    def test_unchanged_tree_propagates_nothing(self):
        tree, evaluator = self.warm_evaluator()
        propagated = evaluator.cache_stats()["stages_propagated"]
        evaluator.evaluate(tree)
        stats = evaluator.cache_stats()
        assert stats["propagations_partial"] == 1
        assert stats["stages_propagated"] == propagated

    def test_structure_change_falls_back_to_full_propagation(self):
        tree, evaluator = self.warm_evaluator()
        edge = next(n.node_id for n in tree.nodes() if n.parent is not None)
        tree.split_edge(edge, 0.5)
        evaluator.evaluate(tree)
        assert evaluator.cache_stats()["propagations_full"] == 2

    def test_disabled_dirty_region_never_goes_partial(self):
        tree, evaluator = self.warm_evaluator(dirty_region=False)
        sink = tree.sinks()[0].node_id
        tree.add_snake(sink, 25.0)
        evaluator.evaluate(tree)
        evaluator.evaluate(tree)
        stats = evaluator.cache_stats()
        assert stats["propagations_partial"] == 0
        assert stats["propagations_full"] == 3

    def test_dirty_region_touches_downstream_of_touched_driver(self):
        # Scaling a buffer dirties its own stage; every stage downstream of
        # it must be re-propagated too (arrival/slew changes cascade), while
        # unrelated stages stay retained.
        tree, evaluator = self.warm_evaluator()
        total = evaluator.cache_stats()["stages_total"]
        victim = tree.buffers()[0].node_id
        tree.place_buffer(victim, tree.node(victim).buffer.scaled(1.3))
        evaluator.evaluate(tree)
        stats = evaluator.cache_stats()
        delta = stats["stages_propagated"] - total
        assert stats["propagations_partial"] == 1
        # The frontier spans the buffer's own stage, the parent stage whose
        # load changed, and everything downstream -- up to the whole tree
        # when the buffer sits on the trunk.
        assert 1 <= delta <= total

    def test_clear_cache_forgets_the_snapshot(self):
        tree, evaluator = self.warm_evaluator()
        evaluator.clear_cache()
        evaluator.evaluate(tree)
        assert evaluator.cache_stats()["propagations_full"] == 2

    def test_flow_surfaces_dirty_region_counters(self):
        from repro.core import ContangoFlow, FlowConfig
        from repro.testing import make_small_instance

        result = ContangoFlow(FlowConfig(engine="arnoldi")).run(make_small_instance())
        stats = result.evaluator_cache
        assert stats["propagations_partial"] > 0
        assert stats["stages_propagated"] < stats["stages_total"]
