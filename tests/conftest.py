"""Shared fixtures: small deterministic instances and trees used across the suite.

The instance/tree builders live in :mod:`repro.testing` so they are importable
by their package path from any pytest rootdir (importing them as ``from
conftest import ...`` collides with ``benchmarks/conftest.py`` when collecting
from the repository root).  This file only binds them to pytest fixtures.
"""

from __future__ import annotations

import pytest

from repro.analysis import ClockNetworkEvaluator, EvaluatorConfig
from repro.cts import ClockTree
from repro.cts.spec import ClockNetworkInstance
from repro.obs import METRICS
from repro.testing import (  # noqa: F401 -- re-exported for legacy imports
    make_manual_tree,
    make_sinks,
    make_small_instance,
    make_zst_tree,
)


@pytest.fixture(autouse=True)
def _reset_metrics():
    """Isolate every test from the process-wide METRICS registry.

    The pipeline driver, IVC engine and perf cases all feed the shared
    :data:`repro.obs.METRICS` instance; without a reset on both sides of
    each test, counter assertions would depend on collection order.
    """
    METRICS.reset()
    yield
    METRICS.reset()


@pytest.fixture
def small_instance() -> ClockNetworkInstance:
    return make_small_instance()


@pytest.fixture
def manual_tree() -> ClockTree:
    return make_manual_tree()


@pytest.fixture
def zst_tree() -> ClockTree:
    return make_zst_tree()


@pytest.fixture
def fast_evaluator() -> ClockNetworkEvaluator:
    """Arnoldi-engine evaluator: accurate enough for assertions, fast enough for tests."""
    return ClockNetworkEvaluator(EvaluatorConfig(engine="arnoldi"))


@pytest.fixture
def spice_evaluator() -> ClockNetworkEvaluator:
    return ClockNetworkEvaluator(EvaluatorConfig(engine="spice"))
