"""Edge-case tests for the asyncio job scheduler (repro.serve.scheduler).

pytest-asyncio is not a dependency: every test drives its coroutine with a
plain ``asyncio.run`` wrapper (bounded by a watchdog timeout so a deadlock
fails instead of hanging the suite).  Dispatch goes through a duck-typed
stub service whose futures the tests resolve by hand, so in-flight windows
(coalescing, error propagation, stream cancellation) are exact, not timed.
"""

import asyncio
from concurrent.futures import Future

import pytest

from repro.api.jobs import JobSpec
from repro.api.records import ErrorRecord
from repro.runner import error_record, run_job
from repro.serve import JobScheduler, QueueFullError
from repro.serve.session import COMPLETED, FAILED, QUEUED, REJECTED

FAST = ("initial",)


def job(seed=None, sinks=16):
    return JobSpec(
        instance=f"ti:{sinks}", engine="elmore", pipeline=FAST, seed=seed
    )


@pytest.fixture(scope="module")
def record():
    """One real completed record the stub resolves every job with."""
    return run_job(job())


class StubService:
    """Duck-typed SynthesisService: pooled dispatch with hand-held futures."""

    max_workers = 2  # >1: the scheduler calls submit() directly on the loop
    store = None

    def __init__(self, result=None):
        self._result = result  # auto-resolve when set, else tests resolve
        self.executed = []
        self.futures = []

    def submit(self, spec):
        future = Future()
        future.set_running_or_notify_cancel()
        self.executed.append(spec)
        self.futures.append(future)
        if self._result is not None:
            future.set_result(self._result)
        return future


def drive(coro, timeout=30.0):
    async def bounded():
        return await asyncio.wait_for(coro, timeout=timeout)

    return asyncio.run(bounded())


async def until(predicate, timeout=10.0):
    """Spin the loop until ``predicate()`` holds (watchdog-bounded)."""
    async def spin():
        while not predicate():
            await asyncio.sleep(0)

    await asyncio.wait_for(spin(), timeout=timeout)


def kinds(state):
    return [event.kind for event in state.events]


class TestCoalescing:
    def test_duplicate_racing_an_in_flight_leader_coalesces(self, record):
        async def scenario():
            stub = StubService()
            scheduler = JobScheduler(stub, workers=1)
            await scheduler.start()
            leader = await scheduler.submit(job(), client="first")
            # The leader is mid-execution (dispatched, future unresolved)
            # when the duplicate arrives: the race the sync-window design
            # makes safe.
            await until(lambda: stub.executed)
            follower = await scheduler.submit(job(), client="second")
            assert follower.coalesced and follower.cached
            assert follower.fingerprint == leader.fingerprint
            stub.futures[0].set_result(record)
            await scheduler.drain()
            await scheduler.close()
            return stub, scheduler, leader, follower

        stub, scheduler, leader, follower = drive(scenario())
        assert len(stub.executed) == 1
        assert scheduler.pool_executions == 1
        assert leader.status == follower.status == COMPLETED
        assert follower.record is leader.record
        assert not leader.cached and follower.cached
        assert kinds(leader) == kinds(follower) == ["started", "completed"]
        assert [e.cached for e in leader.events] == [False, False]
        assert [e.cached for e in follower.events] == [False, True]
        assert scheduler.cache.stats()["coalesced"] == 1

    def test_duplicate_after_completion_is_a_cache_hit(self, record):
        async def scenario():
            stub = StubService(result=record)
            scheduler = JobScheduler(stub, workers=1)
            await scheduler.start()
            first = await scheduler.submit(job())
            await scheduler.drain()
            second = await scheduler.submit(job())
            await scheduler.close()
            return stub, scheduler, first, second

        stub, scheduler, first, second = drive(scenario())
        assert len(stub.executed) == 1
        assert second.status == COMPLETED
        assert second.cached and not second.coalesced
        assert second.record is first.record
        assert scheduler.cache.stats() == {
            "hits": 1, "misses": 1, "coalesced": 0, "memory_entries": 1,
        }


class TestBackpressure:
    def test_reject_policy_raises_and_marks_the_state(self, record):
        async def scenario():
            stub = StubService(result=record)
            scheduler = JobScheduler(stub, max_queue=1, policy="reject", workers=1)
            # Not started: the first submission occupies the whole queue.
            first = await scheduler.submit(job(seed=1))
            with pytest.raises(QueueFullError):
                await scheduler.submit(job(seed=2))
            rejected = scheduler.registry.states()[-1]
            assert rejected.status == REJECTED
            await scheduler.start()
            await scheduler.close()  # drains the surviving submission
            return stub, scheduler, first, rejected

        stub, scheduler, first, rejected = drive(scenario())
        assert first.status == COMPLETED
        assert rejected.finished and rejected.record is None
        assert kinds(rejected) == []  # no completed event is ever fabricated
        assert scheduler.rejected == 1
        assert len(stub.executed) == 1

    def test_wait_policy_parks_the_submitter_until_space_frees(self, record):
        async def scenario():
            stub = StubService(result=record)
            scheduler = JobScheduler(stub, max_queue=1, policy="wait", workers=1)
            await scheduler.submit(job(seed=1))
            parked = asyncio.get_running_loop().create_task(
                scheduler.submit(job(seed=2))
            )
            for _ in range(10):  # the submitter stays parked pre-start
                await asyncio.sleep(0)
            assert not parked.done()
            await scheduler.start()
            second = await parked
            await scheduler.drain()
            await scheduler.close()
            return stub, scheduler, second

        stub, scheduler, second = drive(scenario())
        assert second.status == COMPLETED
        assert len(stub.executed) == 2
        assert scheduler.rejected == 0


class TestErrorPropagation:
    def test_worker_error_reaches_every_coalesced_waiter_uncached(self, record):
        async def scenario():
            stub = StubService()
            scheduler = JobScheduler(stub, workers=1)
            await scheduler.start()
            leader = await scheduler.submit(job(), client="a")
            await until(lambda: stub.executed)
            follower = await scheduler.submit(job(), client="b")
            stub.futures[0].set_exception(RuntimeError("pool fell over"))
            await scheduler.drain()
            # The failure was not cached: the next identical submission
            # re-executes instead of being served the stale error.
            retry = await scheduler.submit(job(), client="c")
            await until(lambda: len(stub.executed) == 2)
            stub.futures[1].set_result(record)
            await scheduler.drain()
            await scheduler.close()
            return stub, scheduler, leader, follower, retry

        stub, scheduler, leader, follower, retry = drive(scenario())
        assert leader.status == follower.status == FAILED
        for waiter in (leader, follower):
            assert isinstance(waiter.record, ErrorRecord)
            assert "pool fell over" in waiter.record.error
            assert not waiter.cached  # an error is never a cache hit
            assert waiter.events[-1].kind == "completed"
        assert retry.status == COMPLETED and not retry.cached
        assert len(stub.executed) == 2
        assert scheduler.cache.stats()["hits"] == 0

    def test_error_record_result_fails_the_job_without_caching(self):
        failure = error_record(job(), "deterministic failure")

        async def scenario():
            stub = StubService(result=failure)
            scheduler = JobScheduler(stub, workers=1)
            await scheduler.start()
            state = await scheduler.submit(job())
            await scheduler.drain()
            await scheduler.close()
            return scheduler, state

        scheduler, state = drive(scenario())
        assert state.status == FAILED and state.record is failure
        assert scheduler.cache.stats()["memory_entries"] == 0


class TestStreams:
    def test_cancelled_stream_reader_leaves_the_job_unharmed(self, record):
        async def scenario():
            stub = StubService()
            scheduler = JobScheduler(stub, workers=1)
            await scheduler.start()
            state = await scheduler.submit(job())
            seen = []

            async def reader():
                async for event in state.stream():
                    seen.append(event.kind)

            task = asyncio.get_running_loop().create_task(reader())
            await until(lambda: seen == ["started"])
            task.cancel()  # the client hung up mid-stream
            with pytest.raises(asyncio.CancelledError):
                await task
            stub.futures[0].set_result(record)
            await scheduler.drain()
            # A fresh reader replays the full buffered sequence.
            replay = [event.kind async for event in state.stream()]
            await scheduler.close()
            return state, seen, replay

        state, seen, replay = drive(scenario())
        assert state.status == COMPLETED
        assert seen == ["started"]
        assert replay == ["started", "completed"]

    def test_queued_jobs_receive_progress_heartbeats(self, record):
        async def scenario():
            stub = StubService(result=record)
            scheduler = JobScheduler(stub, workers=1)
            first = await scheduler.submit(job(seed=1))
            second = await scheduler.submit(job(seed=2))
            await scheduler.start()
            await scheduler.drain()
            await scheduler.close()
            return first, second

        first, second = drive(scenario())
        assert kinds(first) == ["started", "completed"]
        # The job behind it heard a heartbeat for the completion ahead of it.
        assert kinds(second) == ["progress", "started", "completed"]
        progress = second.events[0]
        assert "1 completed" in progress.note


class TestSchedulingOrder:
    def test_round_robin_across_clients(self, record):
        async def scenario():
            stub = StubService(result=record)
            scheduler = JobScheduler(stub, workers=1)
            a1 = await scheduler.submit(job(seed=1), client="alice")
            a2 = await scheduler.submit(job(seed=2), client="alice")
            b1 = await scheduler.submit(job(seed=3), client="bob")
            await scheduler.start()
            await scheduler.drain()
            await scheduler.close()
            return scheduler, a1, a2, b1

        scheduler, a1, a2, b1 = drive(scenario())
        assert scheduler.dispatch_order == [a1.job_id, b1.job_id, a2.job_id]

    def test_priority_jumps_the_line(self, record):
        async def scenario():
            stub = StubService(result=record)
            scheduler = JobScheduler(stub, workers=1)
            low = await scheduler.submit(job(seed=1), priority=0)
            high = await scheduler.submit(job(seed=2), priority=5)
            await scheduler.start()
            await scheduler.drain()
            await scheduler.close()
            return scheduler, low, high

        scheduler, low, high = drive(scenario())
        assert scheduler.dispatch_order == [high.job_id, low.job_id]


class TestLifecycle:
    def test_submit_after_close_raises(self, record):
        async def scenario():
            scheduler = JobScheduler(StubService(result=record), workers=1)
            await scheduler.start()
            await scheduler.close()
            with pytest.raises(RuntimeError, match="closing"):
                await scheduler.submit(job())

        drive(scenario())

    def test_close_without_drain_abandons_queued_work(self, record):
        async def scenario():
            stub = StubService(result=record)
            scheduler = JobScheduler(stub, workers=1)
            state = await scheduler.submit(job())
            await scheduler.close(drain=False)
            return stub, state

        stub, state = drive(scenario())
        assert state.status == QUEUED and not state.finished
        assert stub.executed == []

    def test_stats_shape(self, record):
        async def scenario():
            scheduler = JobScheduler(StubService(result=record), workers=1)
            await scheduler.start()
            await scheduler.submit(job())
            await scheduler.drain()
            stats = scheduler.stats()
            await scheduler.close()
            return stats

        stats = drive(scenario())
        assert stats["jobs"] == 1 and stats["pending"] == 0
        assert stats["completed"] == 1 and stats["pool_executions"] == 1
        assert stats["queue_depth"] == 0 and stats["queue_policy"] == "wait"
        assert stats["cache"]["misses"] == 1
