"""Tests for the bounded fair intake queue (repro.serve.queue)."""

import pytest

from repro.serve import FairQueue, QueueFullError


def drain(queue):
    items = []
    while True:
        item = queue.pop()
        if item is None:
            return items
        items.append(item)


class TestOrdering:
    def test_fifo_within_one_client(self):
        queue = FairQueue()
        for payload in ("a", "b", "c"):
            queue.push("alice", payload)
        assert [item.payload for item in drain(queue)] == ["a", "b", "c"]

    def test_higher_priority_pops_first(self):
        queue = FairQueue()
        queue.push("alice", "low", priority=0)
        queue.push("alice", "high", priority=5)
        queue.push("alice", "mid", priority=1)
        assert [item.payload for item in drain(queue)] == ["high", "mid", "low"]

    def test_round_robin_between_clients_within_a_priority(self):
        queue = FairQueue()
        queue.push("alice", "a1")
        queue.push("alice", "a2")
        queue.push("bob", "b1")
        queue.push("alice", "a3")
        queue.push("bob", "b2")
        # A served client rotates to the back: alice, bob, alice, bob, alice.
        assert [item.payload for item in drain(queue)] == [
            "a1", "b1", "a2", "b2", "a3",
        ]

    def test_priority_beats_fairness(self):
        queue = FairQueue()
        queue.push("alice", "a1", priority=0)
        queue.push("bob", "urgent", priority=1)
        assert queue.pop().payload == "urgent"
        assert queue.pop().payload == "a1"

    def test_sequence_numbers_are_global_submission_order(self):
        queue = FairQueue()
        queue.push("alice", "a")
        queue.push("bob", "b")
        items = drain(queue)
        assert [item.seq for item in items] == sorted(item.seq for item in items)


class TestBounds:
    def test_push_raises_when_full(self):
        queue = FairQueue(max_depth=2)
        queue.push("alice", "a")
        queue.push("bob", "b")
        assert queue.full
        with pytest.raises(QueueFullError):
            queue.push("carol", "c")
        # The rejected push leaves the queue untouched.
        assert len(queue) == 2

    def test_pop_frees_capacity(self):
        queue = FairQueue(max_depth=1)
        queue.push("alice", "a")
        with pytest.raises(QueueFullError):
            queue.push("alice", "b")
        assert queue.pop().payload == "a"
        queue.push("alice", "b")
        assert queue.pop().payload == "b"

    def test_depth_total_and_per_client(self):
        queue = FairQueue()
        queue.push("alice", "a1")
        queue.push("alice", "a2")
        queue.push("bob", "b1")
        assert len(queue) == 3
        assert queue.depth() == 3
        assert queue.depth("alice") == 2
        assert queue.depth("bob") == 1
        assert queue.depth("nobody") == 0
        assert sorted(queue.clients()) == ["alice", "bob"]

    def test_empty_queue_pops_none(self):
        queue = FairQueue()
        assert queue.pop() is None
        assert len(queue) == 0
        assert not queue.full
