"""Tests for the content-addressed result cache (repro.serve.cache)."""

import pytest

from repro.api.jobs import JobSpec
from repro.api.records import stable_record
from repro.runner import error_record, run_job, spec_fingerprint
from repro.serve import ResultCache
from repro.store import RunStore

SPEC = JobSpec(instance="ti:16", engine="elmore", pipeline=("initial",))


@pytest.fixture(scope="module")
def completed():
    """One real completed record and its serve-side cache key."""
    return spec_fingerprint(SPEC), run_job(SPEC)


class TestMemoryCache:
    def test_empty_cache_misses(self, completed):
        fingerprint, _ = completed
        cache = ResultCache()
        assert cache.lookup(fingerprint) is None
        assert cache.stats() == {
            "hits": 0, "misses": 1, "coalesced": 0, "memory_entries": 0,
        }

    def test_put_then_lookup_hits_with_the_same_object(self, completed):
        fingerprint, record = completed
        cache = ResultCache()
        assert cache.put(fingerprint, record)
        assert cache.lookup(fingerprint) is record
        assert cache.stats()["hits"] == 1
        assert cache.stats()["memory_entries"] == 1

    def test_error_records_are_never_cached(self, completed):
        fingerprint, _ = completed
        cache = ResultCache()
        failure = error_record(SPEC, "transient failure")
        assert not cache.put(fingerprint, failure)
        assert cache.lookup(fingerprint) is None
        assert cache.stats()["memory_entries"] == 0

    def test_note_coalesced_counts(self):
        cache = ResultCache()
        cache.note_coalesced()
        cache.note_coalesced()
        assert cache.stats()["coalesced"] == 2


class TestStoreBackedCache:
    def test_prior_process_records_serve_as_hits(self, tmp_path, completed):
        fingerprint, record = completed
        store = RunStore(tmp_path)
        store.append(record, run_id="earlier")
        # A brand-new cache over the same store: no memory, disk hit.
        cache = ResultCache(RunStore(tmp_path))
        cached = cache.lookup(fingerprint)
        assert cached is not None
        assert cache.stats()["hits"] == 1
        assert stable_record(cached) == stable_record(record)
        assert cached.fingerprint == record.fingerprint
        # The disk hit is memoized: the next lookup needs no store read.
        assert cache.lookup(fingerprint) is cached
        assert cache.stats()["memory_entries"] == 1

    def test_stored_error_records_do_not_shadow_the_fingerprint(self, tmp_path):
        store = RunStore(tmp_path)
        store.append(error_record(SPEC, "boom"), run_id="earlier")
        cache = ResultCache(RunStore(tmp_path))
        assert cache.lookup(spec_fingerprint(SPEC)) is None
        assert cache.stats()["misses"] == 1

    def test_plain_job_cache_key_is_the_record_fingerprint(self, completed):
        # The serve cache key for plain synthesis jobs IS the fingerprint
        # their records carry -- the invariant that makes every stored record
        # a valid cache entry (CONTRIBUTING "Fingerprint-cache invariants").
        fingerprint, record = completed
        assert fingerprint == record.fingerprint
