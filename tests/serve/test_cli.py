"""CLI wiring tests for ``repro serve`` and the lazy-import guarantee."""

import os
import subprocess
import sys
from pathlib import Path

from repro.cli import build_parser

SRC = str(Path(__file__).resolve().parents[2] / "src")


class TestParser:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.host == "127.0.0.1" and args.port == 8765
        assert args.workers == 1 and args.max_queue == 64
        assert args.queue_policy == "wait"
        assert args.store is None and args.port_file is None

    def test_serve_overrides(self):
        args = build_parser().parse_args(
            ["serve", "--port", "0", "--port-file", "p", "--workers", "3",
             "--store", "s", "--run-id", "r", "--max-queue", "4",
             "--queue-policy", "reject"]
        )
        assert args.port == 0 and args.port_file == "p"
        assert args.workers == 3 and args.max_queue == 4
        assert args.queue_policy == "reject"
        assert args.store == "s" and args.run_id == "r"


class TestLazyImports:
    def test_plain_run_path_never_imports_asyncio_or_serve(self):
        """The acceptance criterion: ``repro run`` pays nothing for serving.

        A real ``repro run`` in a subprocess, then the module table is
        checked -- the serving stack (and asyncio itself) must only load
        inside the ``serve`` handler.
        """
        code = (
            "import sys\n"
            "from repro.cli import main\n"
            "rc = main(['run', '--instance', 'ti:16', '--engine', 'elmore',"
            " '--pipeline', 'initial'])\n"
            "assert rc == 0, rc\n"
            "leaked = [m for m in ('asyncio', 'repro.serve') if m in sys.modules]\n"
            "assert not leaked, f'serving stack leaked into repro run: {leaked}'\n"
        )
        env = dict(os.environ, PYTHONPATH=SRC)
        result = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, env=env, timeout=300,
        )
        assert result.returncode == 0, result.stderr
