"""Live-endpoint tests for the HTTP/JSON front end (repro.serve.http).

Every test talks real HTTP to a :class:`ServerHandle` (its own thread and
event loop), so request parsing, routing, streaming and error mapping are
exercised end to end -- including the headline dedup invariant: two
concurrent submissions of the same job produce one pool execution and a
``cached``-flagged duplicate whose record is bit-identical.
"""

import json
import socket
import threading
import urllib.error
import urllib.request

import pytest

from repro.api.records import stable_record
from repro.api.service import SynthesisService
from repro.serve import ServerHandle

FAST_JOB = {"instance": "ti:24", "engine": "elmore", "pipeline": ["initial"]}


@pytest.fixture()
def server(tmp_path):
    with SynthesisService(max_workers=1, store=tmp_path / "store") as service:
        with ServerHandle(service) as handle:
            yield handle


def request(handle, path, payload=None, method=None):
    """One JSON request; returns (status, decoded body)."""
    req = urllib.request.Request(
        f"http://127.0.0.1:{handle.port}{path}",
        data=None if payload is None else json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
        method=method or ("POST" if payload is not None else "GET"),
    )
    try:
        with urllib.request.urlopen(req, timeout=60) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def wait_result(handle, job_id, tries=300):
    for _ in range(tries):
        status, body = request(handle, f"/jobs/{job_id}/result")
        if status != 409:
            return status, body
    raise AssertionError(f"{job_id} never completed")


class TestEndpoints:
    def test_healthz(self, server):
        status, body = request(server, "/healthz")
        assert status == 200 and body["status"] == "ok"

    def test_submit_poll_result_roundtrip(self, server):
        status, submitted = request(server, "/jobs", dict(FAST_JOB, client="t"))
        assert status == 202
        assert submitted["status"] in ("queued", "running", "completed")
        job_id = submitted["job_id"]
        status, result = wait_result(server, job_id)
        assert status == 200
        assert result["status"] == "completed" and not result["cached"]
        assert result["record"]["instance"] == "ti:24"
        assert result["record"]["fingerprint"]
        # The job list and single-job views agree.
        _, listing = request(server, "/jobs")
        assert [row["job_id"] for row in listing["jobs"]] == [job_id]
        _, row = request(server, f"/jobs/{job_id}")
        assert row["status"] == "completed"

    def test_unknown_job_is_404(self, server):
        status, body = request(server, "/jobs/job-999")
        assert status == 404 and "job-999" in body["error"]

    def test_bad_payload_is_400(self, server):
        status, body = request(server, "/jobs", {"engine": "elmore"})
        assert status == 400 and "instance" in body["error"]

    def test_unknown_route_is_404(self, server):
        status, _ = request(server, "/nope")
        assert status == 404

    def test_metrics_exposes_scheduler_and_counters(self, server):
        request(server, "/jobs", FAST_JOB)
        status, body = request(server, "/metrics")
        assert status == 200
        assert body["scheduler"]["queue_policy"] == "wait"
        assert "counters" in body["metrics"]
        assert body["metrics"]["counters"]["serve.jobs.submitted"] == 1


class TestDeduplication:
    def test_concurrent_duplicates_execute_once_bit_identically(self, server):
        results = []

        def submit():
            results.append(request(server, "/jobs", FAST_JOB))

        threads = [threading.Thread(target=submit) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert [status for status, _ in results] == [202, 202]
        ids = [body["job_id"] for _, body in results]

        payloads = {}
        for job_id in ids:
            status, body = wait_result(server, job_id)
            assert status == 200 and body["status"] == "completed"
            payloads[job_id] = body
        # Exactly one pool execution; the duplicate is flagged cached
        # (coalesced or post-completion hit, depending on the race) and its
        # record is bit-identical outside the wall-clock fields.
        assert server.scheduler.pool_executions == 1
        flags = sorted(body["cached"] for body in payloads.values())
        assert flags == [False, True]
        first, second = (payloads[job_id]["record"] for job_id in ids)
        assert stable_record(first) == stable_record(second)
        assert first["fingerprint"] == second["fingerprint"]

    def test_resubmit_after_completion_is_served_from_the_store(self, server):
        _, first = request(server, "/jobs", FAST_JOB)
        wait_result(server, first["job_id"])
        _, second = request(server, "/jobs", FAST_JOB)
        status, body = wait_result(server, second["job_id"])
        assert status == 200 and body["cached"]
        _, metrics = request(server, "/metrics")
        assert metrics["scheduler"]["pool_executions"] == 1
        assert metrics["scheduler"]["cache"]["hits"] == 1


class TestStreaming:
    def read_events(self, server, job_id):
        with socket.create_connection(("127.0.0.1", server.port), timeout=60) as sock:
            sock.sendall(
                f"GET /jobs/{job_id}/events HTTP/1.1\r\n"
                f"Host: localhost\r\nConnection: close\r\n\r\n".encode()
            )
            raw = b""
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                raw += chunk
        head, _, body = raw.partition(b"\r\n\r\n")
        assert b"200 OK" in head.splitlines()[0]
        return [json.loads(line) for line in body.splitlines() if line.strip()]

    def test_event_stream_replays_started_then_completed(self, server):
        _, submitted = request(server, "/jobs", FAST_JOB)
        wait_result(server, submitted["job_id"])
        events = self.read_events(server, submitted["job_id"])
        assert [event["kind"] for event in events] == ["started", "completed"]
        assert events[-1]["cached"] is False
        assert events[-1]["failed"] is False
        assert events[-1]["record"]["instance"] == "ti:24"

    def test_duplicate_stream_flags_its_completion_cached(self, server):
        _, first = request(server, "/jobs", FAST_JOB)
        wait_result(server, first["job_id"])
        _, dup = request(server, "/jobs", FAST_JOB)
        wait_result(server, dup["job_id"])
        events = self.read_events(server, dup["job_id"])
        assert events[-1]["kind"] == "completed" and events[-1]["cached"] is True

    def test_client_disconnect_mid_stream_leaves_the_server_healthy(self, server):
        _, submitted = request(server, "/jobs", FAST_JOB)
        # Hang up immediately after the request line: the stream writer hits
        # a closed pipe while the job may still be running.
        with socket.create_connection(("127.0.0.1", server.port), timeout=60) as sock:
            sock.sendall(
                f"GET /jobs/{submitted['job_id']}/events HTTP/1.1\r\n"
                f"Host: localhost\r\n\r\n".encode()
            )
        status, body = wait_result(server, submitted["job_id"])
        assert status == 200 and body["status"] == "completed"
        assert request(server, "/healthz")[0] == 200
