"""Integration tests: whole-flow behaviour that crosses module boundaries."""

import pytest

from repro.analysis import ClockNetworkEvaluator, EvaluatorConfig
from repro.baselines import all_baselines
from repro.core import ContangoFlow, FlowConfig
from repro.workloads import generate_ispd09_benchmark, generate_ti_benchmark

from repro.testing import make_small_instance


@pytest.fixture(scope="module")
def config():
    return FlowConfig(engine="arnoldi")


@pytest.fixture(scope="module")
def optimized(config):
    instance = make_small_instance(sink_count=28, seed=19)
    result = ContangoFlow(config).run(instance)
    return instance, result


class TestContangoVersusBaselines:
    def test_contango_beats_every_baseline_on_clr(self, config, optimized):
        """The Table IV shape: the integrated flow wins on CLR against all baselines."""
        instance, contango = optimized
        for baseline in all_baselines(config):
            baseline_result = baseline.run(instance)
            assert contango.clr <= baseline_result.clr * 1.05

    def test_contango_beats_every_baseline_on_skew(self, config, optimized):
        instance, contango = optimized
        for baseline in all_baselines(config):
            baseline_result = baseline.run(instance)
            assert contango.skew <= baseline_result.skew + 1e-6

    def test_contango_respects_limits_baselines_may_not(self, optimized):
        _, contango = optimized
        assert contango.final_report.within_capacitance_limit
        assert not contango.final_report.has_slew_violation


class TestStageProgress:
    def test_table3_shape_monotone_skew_through_wire_stages(self, optimized):
        _, result = optimized
        skews = {s.stage: s.skew_ps for s in result.stages}
        assert skews["BWSN"] <= skews["TWSN"] <= skews["TWSZ"] <= skews["TBSZ"] + 1e-6

    def test_final_skew_is_small_fraction_of_latency(self, optimized):
        _, result = optimized
        assert result.skew < 0.15 * result.final_report.max_latency


class TestCrossEngineConsistency:
    def test_optimized_tree_ranks_the_same_under_spice(self, optimized):
        """A tree optimized with the Arnoldi engine stays clean under the transient engine."""
        instance, result = optimized
        spice = ClockNetworkEvaluator(
            EvaluatorConfig(engine="spice", slew_limit=instance.slew_limit),
            capacitance_limit=instance.capacitance_limit,
        ).evaluate(result.tree)
        assert spice.skew == pytest.approx(result.skew, rel=0.5, abs=5.0)
        assert not spice.has_slew_violation


class TestGeneratedBenchmarks:
    def test_scaled_ispd09_benchmark_flows_end_to_end(self, config):
        instance = generate_ispd09_benchmark("ispd09fnb1", sink_scale=0.15)
        result = ContangoFlow(config).run(instance)
        assert result.stage("BWSN").skew_ps <= result.stage("INITIAL").skew_ps
        assert result.final_report.within_capacitance_limit

    def test_small_ti_benchmark_flows_end_to_end(self, config):
        instance = generate_ti_benchmark(120)
        result = ContangoFlow(config).run(instance)
        assert result.tree.sink_count() == 120
        assert not result.final_report.has_slew_violation
