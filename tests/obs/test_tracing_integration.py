"""Tracing through the real pipeline: determinism, records, store, CLI."""

import json

from repro.api.jobs import JobSpec, McJobSpec
from repro.api.records import McRecord, RunRecord, record_from_dict
from repro.cli import main
from repro.obs import METRICS, Tracer, TraceSummary, strip_timings, trace_artifact
from repro.runner import execute_job_traced, run_job, run_mc_job
from repro.store import RunStore

FAST = ("initial",)


def fast_spec(seed=7):
    return JobSpec(instance="ti:20", engine="elmore", pipeline=FAST, seed=seed)


def comparable(record):
    """A record dict with every wall-clock-bearing field removed."""
    payload = record.to_record()
    payload.pop("trace", None)
    payload.pop("wall_clock_s", None)
    for key in ("summary", "nominal"):
        if isinstance(payload.get(key), dict):
            payload[key].pop("runtime_s", None)
    for row in payload.get("stage_table", []):
        row.pop("elapsed_s", None)
    return payload


class TestResultParity:
    def test_run_job_results_bit_identical_tracing_on_and_off(self):
        traced = run_job(fast_spec(), tracer=Tracer())
        plain = run_job(fast_spec())
        assert traced.fingerprint == plain.fingerprint
        assert plain.trace is None and traced.trace is not None
        assert comparable(traced) == comparable(plain)

    def test_mc_job_results_bit_identical_tracing_on_and_off(self):
        spec = McJobSpec(
            instance="ti:20", engine="elmore", pipeline=FAST, samples=8, seed=3
        )
        traced = run_mc_job(spec, tracer=Tracer())
        plain = run_mc_job(spec)
        assert plain.trace is None and traced.trace is not None
        assert comparable(traced) == comparable(plain)

    def test_span_structure_is_deterministic_across_runs(self):
        payloads = []
        for _ in range(2):
            tracer = Tracer()
            run_job(fast_spec(), tracer=tracer)
            artifact = trace_artifact(tracer, meta={"label": "parity"})
            payloads.append(
                json.dumps(strip_timings(artifact), indent=1, sort_keys=True)
            )
        assert payloads[0] == payloads[1]


class TestTraceOnRecords:
    def test_traced_worker_attaches_summary_that_survives_the_store(self, tmp_path):
        record = execute_job_traced(fast_spec())
        assert isinstance(record, RunRecord) and record.trace is not None
        store = RunStore(tmp_path / "store")
        store.append(record, run_id="t1")
        (loaded,) = store.typed_records(run_id="t1")
        assert loaded.trace == record.trace
        summary = TraceSummary.from_record(loaded.trace)
        assert summary.spans > 0
        assert {e["name"] for e in summary.top} >= {"flow:contango", "evaluate"}
        assert summary.counters["evaluations"] > 0

    def test_traced_mc_worker_records_yield_sweep(self):
        record = execute_job_traced(
            McJobSpec(
                instance="ti:20", engine="elmore", pipeline=FAST, samples=8, seed=3
            )
        )
        assert isinstance(record, McRecord) and record.trace is not None
        names = {e["name"] for e in TraceSummary.from_record(record.trace).top}
        assert "yield_sweep" in names

    def test_legacy_round_trip_preserves_the_trace_key(self):
        record = execute_job_traced(fast_spec())
        assert record_from_dict(record.to_record()).trace == record.trace

    def test_untraced_record_serializes_without_a_trace_key(self):
        assert "trace" not in run_job(fast_spec()).to_record()


class TestProcessMetrics:
    def test_pipeline_run_feeds_the_registry(self):
        METRICS.reset()
        # Default pipeline: the IVC-driven passes must feed the round counters.
        run_job(JobSpec(instance="ti:20", engine="elmore", seed=7))
        snapshot = METRICS.snapshot()["counters"]
        assert snapshot["pipeline.flows"] == 1
        assert "evaluator.hits" in snapshot
        assert (
            snapshot.get("ivc.rounds_accepted", 0)
            + snapshot.get("ivc.rounds_rejected", 0)
        ) > 0
        METRICS.reset()


class TestCli:
    def test_profile_prints_tree_and_writes_artifacts(self, tmp_path, capsys):
        json_path = tmp_path / "trace.json"
        chrome_path = tmp_path / "chrome.json"
        code = main(
            [
                "profile", "ti:20",
                "--engine", "elmore",
                "--pipeline", "initial",
                "--json", str(json_path),
                "--chrome", str(chrome_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "flow:contango" in out
        assert "wall-clock" in out and "span(s)" in out
        artifact = json.loads(json_path.read_text())
        assert artifact["kind"] == "trace" and artifact["schema"] == 1
        assert json.loads(chrome_path.read_text())["traceEvents"]

    def test_profile_surfaces_job_failure_as_exit_1(self, capsys):
        assert main(["profile", "nope:1"]) == 1
        assert "repro profile" in capsys.readouterr().err

    def test_traced_sweep_then_trace_reads_it_back(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert (
            main(
                [
                    "sweep",
                    "--instance", "ti:20",
                    "--engine", "elmore",
                    "--store", store,
                    "--run-id", "t1",
                    "--trace",
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["trace", f"{store}@t1"]) == 0
        out = capsys.readouterr().out
        assert "== ti-20__contango__elmore ==" in out
        assert "schema 1" in out and "evaluate" in out

    def test_trace_on_untraced_selection_exits_1(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        main(
            [
                "sweep",
                "--instance", "ti:20",
                "--engine", "elmore",
                "--store", store,
                "--run-id", "plain",
            ]
        )
        capsys.readouterr()
        assert main(["trace", store]) == 1
        assert "no traced records" in capsys.readouterr().err

    def test_trace_on_missing_store_exits_2(self, tmp_path, capsys):
        assert main(["trace", str(tmp_path / "missing")]) == 2
        assert "repro trace" in capsys.readouterr().err
