"""Unit tests for repro.obs.trace: spans, tracers, artifacts, exports."""

import json

import pytest

from repro.obs import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    TraceSummary,
    chrome_trace,
    read_trace,
    render_span_tree,
    strip_timings,
    summarize,
    trace_artifact,
    write_trace,
)
from repro.obs import path_counters, path_timings
from repro.obs.trace import TRACE_SCHEMA


def record_tree(tracer):
    """A small fixed span tree: job -> (evaluate x2, propagate)."""
    with tracer.span("job"):
        with tracer.span("evaluate") as span:
            span.count("stages", 3)
        with tracer.span("evaluate") as span:
            span.count("stages", 2)
            span.count("cache_hits")
        with tracer.span("propagate"):
            tracer.count("corners", 4)


class TestSpan:
    def test_self_time_is_total_minus_children(self):
        parent = Span("parent")
        parent.total_s = 1.0
        child = Span("child")
        child.total_s = 0.3
        parent.children.append(child)
        assert parent.self_s == pytest.approx(0.7)

    def test_count_accumulates(self):
        span = Span("s")
        span.count("hits")
        span.count("hits", 4)
        assert span.counters == {"hits": 5}

    def test_walk_is_preorder(self):
        root = Span("a")
        b, c = Span("b"), Span("c")
        b.children.append(c)
        root.children.append(b)
        assert [s.name for s in root.walk()] == ["a", "b", "c"]


class TestTracer:
    def test_nesting_and_counters(self):
        tracer = Tracer()
        record_tree(tracer)
        (root,) = tracer.roots
        assert root.name == "job"
        assert [c.name for c in root.children] == [
            "evaluate",
            "evaluate",
            "propagate",
        ]
        assert root.children[1].counters == {"stages": 2, "cache_hits": 1}
        # tracer.count targets the innermost open span
        assert root.children[2].counters == {"corners": 4}

    def test_current_tracks_the_open_span(self):
        tracer = Tracer()
        assert tracer.current is None
        with tracer.span("outer"):
            assert tracer.current.name == "outer"
            with tracer.span("inner"):
                assert tracer.current.name == "inner"
        assert tracer.current is None

    def test_timings_are_monotone(self):
        tracer = Tracer()
        record_tree(tracer)
        (root,) = tracer.roots
        assert root.total_s >= sum(c.total_s for c in root.children) >= 0.0
        assert tracer.total_s() == root.total_s
        assert sum(1 for _ in tracer.spans()) == 4

    def test_count_outside_any_span_is_a_noop(self):
        tracer = Tracer()
        tracer.count("orphan")
        record_tree(tracer)
        assert all("orphan" not in s.counters for s in tracer.spans())


class TestNullTracer:
    def test_span_yields_none_and_records_nothing(self):
        with NULL_TRACER.span("anything") as span:
            assert span is None
        NULL_TRACER.count("ignored", 7)
        assert not NULL_TRACER.enabled

    def test_span_context_manager_is_cached(self):
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")

    def test_exceptions_propagate(self):
        with pytest.raises(RuntimeError):
            with NullTracer().span("x"):
                raise RuntimeError("boom")


class TestSummarize:
    def test_aggregates_per_name_and_merges_counters(self):
        tracer = Tracer()
        record_tree(tracer)
        summary = summarize(tracer)
        assert summary.schema == TRACE_SCHEMA
        assert summary.spans == 4
        entries = {e["name"]: e for e in summary.top}
        assert entries["evaluate"]["count"] == 2
        assert summary.counters == {"cache_hits": 1, "corners": 4, "stages": 5}
        assert list(summary.counters) == sorted(summary.counters)

    def test_top_n_truncates(self):
        tracer = Tracer()
        record_tree(tracer)
        assert len(summarize(tracer, top_n=1).top) == 1

    def test_round_trips_through_its_record_form(self):
        tracer = Tracer()
        record_tree(tracer)
        summary = summarize(tracer)
        assert TraceSummary.from_record(summary.to_record()) == summary

    def test_from_record_rejects_newer_schema(self):
        with pytest.raises(ValueError, match="newer"):
            TraceSummary.from_record({"schema": TRACE_SCHEMA + 1})


class TestPathHelpers:
    def test_path_counters_merge_same_path_and_skip_counterless(self):
        tracer = Tracer()
        record_tree(tracer)
        paths = path_counters(tracer)
        # The two sibling "evaluate" spans share one slash-joined path.
        assert paths["job/evaluate"] == {"stages": 5, "cache_hits": 1}
        assert paths["job/propagate"] == {"corners": 4}
        # The counter-less root is omitted entirely.
        assert "job" not in paths
        assert list(paths) == sorted(paths)

    def test_path_timings_accumulate_count_total_and_self(self):
        tracer = Tracer()
        record_tree(tracer)
        timings = path_timings(tracer)
        assert timings["job/evaluate"]["count"] == 2
        assert timings["job"]["count"] == 1
        assert timings["job"]["total_s"] >= timings["job"]["self_s"]
        assert set(timings["job"]) == {"count", "total_s", "self_s"}

    def test_summary_carries_paths_and_round_trips(self):
        tracer = Tracer()
        record_tree(tracer)
        summary = summarize(tracer)
        assert summary.paths == path_counters(tracer)
        assert TraceSummary.from_record(summary.to_record()) == summary

    def test_pre_paths_records_parse_with_empty_paths(self):
        tracer = Tracer()
        record_tree(tracer)
        record = summarize(tracer).to_record()
        del record["paths"]
        assert TraceSummary.from_record(record).paths == {}


class TestArtifact:
    def test_structure_ids_parents_and_quarantined_timings(self):
        tracer = Tracer()
        record_tree(tracer)
        artifact = trace_artifact(tracer, meta={"label": "t"})
        assert artifact["schema"] == TRACE_SCHEMA
        assert artifact["kind"] == "trace"
        assert artifact["meta"] == {"label": "t"}
        assert [s["id"] for s in artifact["spans"]] == [0, 1, 2, 3]
        assert [s["parent"] for s in artifact["spans"]] == [None, 0, 0, 0]
        assert {t["id"] for t in artifact["timings"]} == {0, 1, 2, 3}
        # no timing field leaks into the structural block
        assert all(
            set(span) == {"id", "parent", "name", "counters"}
            for span in artifact["spans"]
        )

    def test_strip_timings_is_deterministic_across_runs(self):
        payloads = []
        for _ in range(2):
            tracer = Tracer()
            record_tree(tracer)
            artifact = trace_artifact(tracer, meta={"label": "t"})
            payloads.append(
                json.dumps(strip_timings(artifact), sort_keys=True)
            )
        assert payloads[0] == payloads[1]
        assert '"timings"' not in payloads[0]

    def test_write_read_round_trip(self, tmp_path):
        tracer = Tracer()
        record_tree(tracer)
        artifact = trace_artifact(tracer)
        path = write_trace(tmp_path / "deep" / "trace.json", artifact)
        assert read_trace(path) == artifact

    def test_read_rejects_non_trace_and_newer_schema(self, tmp_path):
        bogus = tmp_path / "bogus.json"
        bogus.write_text(json.dumps({"kind": "other"}))
        with pytest.raises(ValueError, match="not a trace artifact"):
            read_trace(bogus)
        future = tmp_path / "future.json"
        future.write_text(
            json.dumps({"kind": "trace", "schema": TRACE_SCHEMA + 1})
        )
        with pytest.raises(ValueError, match="newer"):
            read_trace(future)


class TestExports:
    def test_chrome_trace_events_mirror_spans(self):
        tracer = Tracer()
        record_tree(tracer)
        artifact = trace_artifact(tracer)
        chrome = chrome_trace(artifact)
        events = chrome["traceEvents"]
        assert len(events) == len(artifact["spans"])
        assert all(e["ph"] == "X" for e in events)
        names = [e["name"] for e in events]
        assert names[0] == "job"
        by_name = {e["name"]: e for e in events}
        assert by_name["propagate"]["args"] == {"corners": 4}

    def test_render_span_tree_indents_children(self):
        tracer = Tracer()
        record_tree(tracer)
        lines = render_span_tree(tracer).splitlines()
        assert lines[0].startswith("job")
        assert lines[1].startswith("  evaluate")
        assert "[cache_hits=1, stages=2]" in lines[2]
