"""Unit tests for repro.obs.metrics: counters, gauges, histograms, absorb."""

import pytest

from repro.obs import METRICS, Metrics


@pytest.fixture
def metrics():
    return Metrics()


class TestCounters:
    def test_count_accumulates_from_zero(self, metrics):
        assert metrics.counter_value("jobs") == 0
        metrics.count("jobs")
        metrics.count("jobs", 4)
        assert metrics.counter_value("jobs") == 5

    def test_gauge_is_last_write_wins(self, metrics):
        metrics.gauge("pool_size", 2.0)
        metrics.gauge("pool_size", 8.0)
        assert metrics.gauge_value("pool_size") == 8.0


class TestHistograms:
    def test_observe_tracks_count_sum_min_max_mean(self, metrics):
        for value in (2.0, 8.0, 5.0):
            metrics.observe("latency", value)
        stats = metrics.histogram("latency")
        assert stats.count == 3
        assert stats.minimum == 2.0
        assert stats.maximum == 8.0
        assert stats.mean == pytest.approx(5.0)
        assert stats.to_record()["total"] == 15.0

    def test_missing_histogram_reads_empty(self, metrics):
        assert metrics.histogram("nothing").count == 0
        assert metrics.histogram("nothing").mean == 0.0


class TestAbsorb:
    def test_absorbs_integer_entries_under_prefix(self, metrics):
        metrics.absorb("evaluator", {"hits": 3, "misses": 1})
        metrics.absorb("evaluator", {"hits": 2})
        assert metrics.counter_value("evaluator.hits") == 5
        assert metrics.counter_value("evaluator.misses") == 1

    def test_skips_bools_floats_and_nested_values(self, metrics):
        metrics.absorb(
            "gate",
            {"checks": 2, "enabled": True, "ratio": 0.5, "sub": {"x": 1}},
        )
        snapshot = metrics.snapshot()
        assert snapshot["counters"] == {"gate.checks": 2}


class TestSnapshotReset:
    def test_snapshot_is_sorted_and_jsonable(self, metrics):
        metrics.count("b")
        metrics.count("a")
        metrics.gauge("g", 1.5)
        metrics.observe("h", 3.0)
        snapshot = metrics.snapshot()
        assert list(snapshot["counters"]) == ["a", "b"]
        assert snapshot["gauges"] == {"g": 1.5}
        assert snapshot["histograms"]["h"]["count"] == 1

    def test_reset_drops_everything(self, metrics):
        metrics.count("a")
        metrics.gauge("g", 1.0)
        metrics.observe("h", 1.0)
        metrics.reset()
        assert metrics.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }

    def test_process_wide_registry_exists(self):
        assert isinstance(METRICS, Metrics)
