"""Single-source-of-truth guard: the package version matches pyproject.toml.

PR 8 shipped with ``repro.__version__`` trailing the pyproject version --
exactly the drift that makes perf-ledger entries (keyed by package version)
ambiguous.  The pyproject is parsed with a line regex rather than
``tomllib`` so the guard runs on every supported Python.
"""

from __future__ import annotations

import re
from pathlib import Path

import repro

PYPROJECT = Path(__file__).resolve().parents[1] / "pyproject.toml"


def pyproject_version() -> str:
    match = re.search(
        r'^version\s*=\s*"([^"]+)"', PYPROJECT.read_text(encoding="utf-8"), re.M
    )
    assert match is not None, f"no version line in {PYPROJECT}"
    return match.group(1)


def test_module_version_matches_pyproject():
    assert repro.__version__ == pyproject_version()


def test_cli_reports_the_same_version():
    from repro.cli import package_version

    assert package_version() == pyproject_version()
