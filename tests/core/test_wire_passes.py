"""Tests for the SPICE-driven wire optimization passes (TWSZ, TWSN, BWSN)."""

import pytest

from repro.analysis import ClockNetworkEvaluator, EvaluatorConfig
from repro.buffering.fast_buffering import insert_buffers_with_sizing
from repro.core.bottom_level import bottom_level_fine_tuning, rise_fall_divergence
from repro.core.polarity import correct_sink_polarity
from repro.core.wiresizing import top_down_wiresizing
from repro.core.wiresnaking import top_down_wiresnaking
from repro.cts import ispd09_buffer_library, ispd09_wire_library

from repro.testing import make_zst_tree

WIRES = ispd09_wire_library()
BUFS = ispd09_buffer_library()


def buffered_tree(sink_count=28, seed=13):
    tree = make_zst_tree(sink_count=sink_count, seed=seed)
    sweep = insert_buffers_with_sizing(
        tree,
        [BUFS.by_name("INV_S").parallel(8), BUFS.by_name("INV_S").parallel(16)],
        capacitance_limit=1e9,
    )
    buffered = sweep.tree
    correct_sink_polarity(
        buffered, BUFS.by_name("INV_S"),
        stronger_inverters=[BUFS.by_name("INV_S").parallel(k) for k in (2, 4, 8)],
    )
    return buffered


def fresh_evaluator():
    return ClockNetworkEvaluator(EvaluatorConfig(engine="arnoldi"), capacitance_limit=1e9)


class TestTopDownWiresizing:
    def test_skew_never_gets_worse(self):
        tree = buffered_tree()
        evaluator = fresh_evaluator()
        before = evaluator.evaluate(tree)
        result = top_down_wiresizing(tree, evaluator, WIRES, baseline=before)
        after = evaluator.evaluate(tree)
        assert after.skew <= before.skew + 1e-6
        assert result.final["skew_ps"] <= result.initial["skew_ps"] + 1e-6

    def test_no_slew_violation_introduced(self):
        tree = buffered_tree()
        evaluator = fresh_evaluator()
        top_down_wiresizing(tree, evaluator, WIRES)
        assert not evaluator.evaluate(tree).has_slew_violation

    def test_improvement_comes_from_downsized_edges(self):
        tree = buffered_tree()
        evaluator = fresh_evaluator()
        result = top_down_wiresizing(tree, evaluator, WIRES)
        narrow_edges = sum(
            1 for n in tree.nodes() if n.parent is not None and n.wire_type == WIRES.narrowest
        )
        if result.improved:
            assert narrow_edges >= 1
            assert result.edges_changed >= 1

    def test_tree_remains_valid(self):
        tree = buffered_tree()
        top_down_wiresizing(tree, fresh_evaluator(), WIRES)
        tree.validate()

    def test_evaluations_are_counted(self):
        tree = buffered_tree()
        evaluator = fresh_evaluator()
        result = top_down_wiresizing(tree, evaluator, WIRES)
        assert result.evaluations_used == evaluator.run_count

    def test_nothing_to_do_when_all_edges_narrow(self):
        tree = buffered_tree()
        for node in tree.nodes():
            if node.parent is not None:
                tree.set_wire_type(node.node_id, WIRES.narrowest)
        result = top_down_wiresizing(tree, fresh_evaluator(), WIRES)
        assert not result.improved


class TestTopDownWiresnaking:
    def test_skew_never_gets_worse(self):
        tree = buffered_tree(seed=17)
        evaluator = fresh_evaluator()
        before = evaluator.evaluate(tree)
        top_down_wiresnaking(tree, evaluator, baseline=before)
        after = evaluator.evaluate(tree)
        assert after.skew <= before.skew + 1e-6

    def test_snaking_adds_wirelength_when_it_improves(self):
        tree = buffered_tree(seed=17)
        before_wl = tree.total_wirelength()
        result = top_down_wiresnaking(tree, fresh_evaluator(), unit_length=20.0)
        if result.improved:
            assert tree.total_wirelength() > before_wl

    def test_trunk_is_never_snaked(self):
        tree = buffered_tree(seed=17)
        top_down_wiresnaking(tree, fresh_evaluator())
        trunk_child = tree.root.children[0]
        assert tree.node(trunk_child).snake_length == 0.0

    def test_invalid_unit_length(self):
        tree = buffered_tree(seed=17)
        with pytest.raises(ValueError):
            top_down_wiresnaking(tree, fresh_evaluator(), unit_length=-1.0)

    def test_no_slew_violation_introduced(self):
        tree = buffered_tree(seed=17)
        evaluator = fresh_evaluator()
        top_down_wiresnaking(tree, evaluator)
        assert not evaluator.evaluate(tree).has_slew_violation


class TestBottomLevelFineTuning:
    def test_skew_never_gets_worse(self):
        tree = buffered_tree(seed=23)
        evaluator = fresh_evaluator()
        before = evaluator.evaluate(tree)
        bottom_level_fine_tuning(tree, evaluator, WIRES, baseline=before)
        after = evaluator.evaluate(tree)
        assert after.skew <= before.skew + 1e-6

    def test_only_sink_edges_are_touched(self):
        tree = buffered_tree(seed=23)
        internal_snapshot = {
            n.node_id: (n.snake_length, n.wire_type)
            for n in tree.nodes()
            if n.parent is not None and not n.is_sink
        }
        bottom_level_fine_tuning(tree, fresh_evaluator(), WIRES)
        for node_id, (snake, wire) in internal_snapshot.items():
            node = tree.node(node_id)
            assert node.snake_length == snake
            assert node.wire_type == wire

    def test_tree_valid_after_tuning(self):
        tree = buffered_tree(seed=23)
        bottom_level_fine_tuning(tree, fresh_evaluator(), WIRES)
        tree.validate()

    def test_rise_fall_divergence_flag(self):
        tree = buffered_tree(seed=23)
        evaluator = fresh_evaluator()
        report = evaluator.evaluate(tree)
        assert isinstance(rise_fall_divergence(report), bool)
