"""Tests for composite inverter analysis (Table I)."""

import pytest

from repro.core.composite import (
    analyze_composites,
    composite_ladder,
    enumerate_composites,
    non_dominated_composites,
    smallest_dominating_count,
    table1_rows,
)
from repro.cts import ispd09_buffer_library
from repro.cts.bufferlib import ISPD09_LARGE_INVERTER, ISPD09_SMALL_INVERTER

LIB = ispd09_buffer_library()


class TestEnumeration:
    def test_counts(self):
        composites = enumerate_composites(LIB, max_parallel=8)
        assert len(composites) == 16

    def test_invalid_max_parallel(self):
        with pytest.raises(ValueError):
            enumerate_composites(LIB, max_parallel=0)


class TestDominance:
    def test_smallest_dominating_count_is_eight(self):
        assert smallest_dominating_count(ISPD09_SMALL_INVERTER, ISPD09_LARGE_INVERTER) == 8

    def test_smallest_dominating_count_none_when_unreachable(self):
        assert smallest_dominating_count(ISPD09_LARGE_INVERTER, ISPD09_SMALL_INVERTER, max_parallel=4) is None

    def test_non_dominated_filter(self):
        composites = enumerate_composites(LIB, max_parallel=8)
        frontier = non_dominated_composites(composites)
        assert all(
            not any(other.dominates(kept) for other in composites)
            for kept in frontier
        )
        # The large inverter is dominated by 8 small ones, so it is not on the frontier.
        assert all(comp.name != "INV_L" for comp in frontier)


class TestAnalysis:
    def test_preferred_base_is_eight_small(self):
        analysis = analyze_composites(LIB)
        assert analysis.preferred_base.base_name == "INV_S"
        assert analysis.preferred_base.parallel_count == 8

    def test_ladder_is_batches_of_the_base(self):
        analysis = analyze_composites(LIB, ladder_steps=4)
        counts = [b.parallel_count for b in analysis.ladder]
        assert counts == [8, 16, 24, 32]

    def test_ladder_strength_increases(self):
        analysis = analyze_composites(LIB)
        resistances = [b.output_res for b in analysis.ladder]
        assert resistances == sorted(resistances, reverse=True)

    def test_composite_ladder_validation(self):
        with pytest.raises(ValueError):
            composite_ladder(ISPD09_SMALL_INVERTER, 0)


class TestTable1:
    def test_rows_match_the_paper(self):
        rows = {row["type"]: row for row in table1_rows(LIB)}
        assert rows["1X Large"]["output_res_ohm"] == pytest.approx(61.2)
        assert rows["1X Small"]["input_cap_fF"] == pytest.approx(4.2)
        assert rows["2X Small"]["input_cap_fF"] == pytest.approx(8.4)
        assert rows["4X Small"]["output_cap_fF"] == pytest.approx(24.4)
        assert rows["8X Small"]["output_res_ohm"] == pytest.approx(55.0)

    def test_row_order(self):
        labels = [row["type"] for row in table1_rows(LIB)]
        assert labels == ["1X Large", "1X Small", "2X Small", "4X Small", "8X Small"]

    def test_eight_small_beats_large_on_every_column(self):
        rows = {row["type"]: row for row in table1_rows(LIB)}
        for key in ("input_cap_fF", "output_cap_fF", "output_res_ohm"):
            assert rows["8X Small"][key] < rows["1X Large"][key]
