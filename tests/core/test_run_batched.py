"""Tests for batched best-of-K IVC rounds and the ``*_k`` pipeline variants.

``IvcEngine.run_batched`` must (a) reduce exactly to the classic ``run``
loop when given a single 1.0 scale and a deterministic proposal, (b) produce
the same committed trees whether the evaluator scores candidates batched or
serially (the evaluator switch is the A/B toggle; the loop is oblivious),
and (c) be reachable end to end through the registered ``tbsz_k``/``twsz_k``
/``twsn_k``/``bwsn_k`` passes and ``BATCHED_PIPELINE``.
"""

import pytest

from repro.analysis.evaluator import ClockNetworkEvaluator, EvaluatorConfig
from repro.core import ContangoFlow, FlowConfig, available_passes, resolve_pipeline
from repro.core.config import BATCHED_PIPELINE, DEFAULT_PIPELINE
from repro.core.ivc import IvcEngine
from repro.core.wiresnaking import top_down_wiresnaking
from repro.testing import make_small_instance, make_zst_tree, tree_fingerprint


def fresh_evaluator(**overrides) -> ClockNetworkEvaluator:
    config = dict(engine="elmore", slew_limit=1e6)
    config.update(overrides)
    return ClockNetworkEvaluator(config=EvaluatorConfig(**config))


def content_fingerprint(tree):
    """Tree fingerprint with journal revisions stripped.

    Revisions come from a process-global counter, so two identical trees
    built at different times never share them; only the content rows are
    comparable across separately-constructed trees.
    """
    root_id, _, nodes = tree_fingerprint(tree)
    return (root_id, tuple(row[:-1] for row in nodes))


def snake_proposal(tree):
    """A deterministic aggressiveness-scaled proposal over sink edges."""
    sinks = sorted(s.node_id for s in tree.sinks())

    def propose(state):
        length = 30.0 * state.aggressiveness
        if length < 1.0:
            return 0
        for node_id in sinks[:2]:
            tree.add_snake(node_id, length)
        return 2

    return propose


class TestRunBatched:
    def test_empty_scales_raise(self):
        tree = make_zst_tree(sink_count=8)
        engine = IvcEngine("t", tree, fresh_evaluator(), objective="skew")
        with pytest.raises(ValueError):
            engine.run_batched(lambda state: 0, max_rounds=1, candidate_scales=())

    def test_single_unit_scale_matches_classic_run(self):
        results = []
        for batched in (False, True):
            tree = make_zst_tree(sink_count=12, seed=5)
            evaluator = fresh_evaluator()
            engine = IvcEngine("t", tree, evaluator, objective="clr")
            propose = snake_proposal(tree)
            if batched:
                result = engine.run_batched(
                    propose, max_rounds=4, candidate_scales=(1.0,)
                )
            else:
                result = engine.run(propose, max_rounds=4)
            results.append(
                (result.rounds, result.improved, content_fingerprint(tree))
            )
        assert results[0] == results[1]

    def test_batched_and_serial_scoring_commit_identical_trees(self):
        fingerprints = []
        for candidate_batching in (True, False):
            tree = make_zst_tree(sink_count=12, seed=5)
            evaluator = fresh_evaluator(candidate_batching=candidate_batching)
            engine = IvcEngine("t", tree, evaluator, objective="clr")
            result = engine.run_batched(
                snake_proposal(tree), max_rounds=4, candidate_scales=(1.0, 0.5, 0.25)
            )
            fingerprints.append((result.rounds, content_fingerprint(tree)))
        assert fingerprints[0] == fingerprints[1]

    def test_vacuous_round_appends_empty_note_and_stops(self):
        tree = make_zst_tree(sink_count=8)
        engine = IvcEngine("t", tree, fresh_evaluator(), objective="skew")
        result = engine.run_batched(
            lambda state: 0,
            max_rounds=3,
            candidate_scales=(1.0, 0.5),
            empty_note="nothing to do",
        )
        assert "nothing to do" in result.notes
        assert result.rounds == 0

    def test_all_rejected_round_notes_reason_and_decays(self):
        tree = make_zst_tree(sink_count=8)
        evaluator = fresh_evaluator()
        engine = IvcEngine("t", tree, evaluator, objective="skew")

        def worsen(state):
            # Snaking one sink edge strictly increases zero-skew tree skew.
            sink = sorted(s.node_id for s in tree.sinks())[0]
            tree.add_snake(sink, 50.0 * state.aggressiveness)
            return 1

        result = engine.run_batched(
            worsen,
            max_rounds=5,
            candidate_scales=(1.0, 0.5),
            max_consecutive_rejections=2,
        )
        assert result.rounds == 0
        assert not result.improved
        assert any("rejected" in note for note in result.notes)

    def test_wiresnaking_pass_routes_through_run_batched(self):
        tree = make_zst_tree(sink_count=16, seed=3)
        # A zero-skew tree has no slow-down slack; delaying one sink gives
        # every other sink slack for the snaking rounds to spend.
        slowest = sorted(s.node_id for s in tree.sinks())[0]
        tree.add_snake(slowest, 400.0)
        evaluator = fresh_evaluator(engine="arnoldi")
        result = top_down_wiresnaking(
            tree,
            evaluator,
            max_rounds=4,
            candidate_scales=(1.0, 0.5),
        )
        assert result.improved
        assert evaluator.cache_stats()["candidates_scored"] > 0


class TestBatchedPipelineVariants:
    def test_k_passes_are_registered(self):
        names = available_passes()
        for name in ("tbsz_k", "twsz_k", "twsn_k", "bwsn_k"):
            assert name in names
        passes = resolve_pipeline(list(BATCHED_PIPELINE))
        assert [p.name for p in passes] == list(BATCHED_PIPELINE)
        for p in passes[1:]:
            assert p.candidate_scales == (1.0, 0.5, 0.25)

    def test_default_pipeline_keeps_serial_rounds(self):
        for p in resolve_pipeline(list(DEFAULT_PIPELINE)):
            assert p.candidate_scales is None

    def test_batched_pipeline_end_to_end(self):
        instance = make_small_instance()
        config = FlowConfig(engine="arnoldi", pipeline=list(BATCHED_PIPELINE))
        result = ContangoFlow(config).run(instance)
        report = result.require_report()
        assert report.skew >= 0.0
        assert not report.has_slew_violation
        stats = result.evaluator_cache
        assert stats["candidates_scored"] > 0
        assert stats["candidate_batches"] > 0

    def test_batched_pipeline_no_worse_than_default(self):
        instance = make_small_instance()
        default = ContangoFlow(FlowConfig(engine="arnoldi")).run(instance)
        batched = ContangoFlow(
            FlowConfig(engine="arnoldi", pipeline=list(BATCHED_PIPELINE))
        ).run(instance)
        # Best-of-K rounds explore a superset of the serial proposals; the
        # final skew must stay within the same quality envelope (the exact
        # trajectory differs, so equality is not asserted).
        assert batched.skew <= default.skew * 1.5 + 1.0
