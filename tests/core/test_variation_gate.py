"""Tests for the Monte Carlo p95-skew acceptance gate and its IVC wiring."""

import pytest

from repro.analysis import ClockNetworkEvaluator, EvaluatorConfig
from repro.analysis.variation import default_variation_model
from repro.core import (
    ContangoFlow,
    FlowConfig,
    VARIATION_PIPELINE,
    VariationGate,
    available_passes,
    ivc_round,
)
from repro.core.variation import REASON_P95_REGRESSION
from repro.testing import make_small_instance, tree_fingerprint


@pytest.fixture(scope="module")
def optimized():
    instance = make_small_instance(sink_count=24)
    result = ContangoFlow(FlowConfig(engine="arnoldi")).run(instance)
    return instance, result.require_tree()


def _evaluator(instance):
    return ClockNetworkEvaluator(
        config=EvaluatorConfig(engine="arnoldi", slew_limit=instance.slew_limit),
        capacitance_limit=instance.capacitance_limit,
    )


def _gate(instance, evaluator=None, **kwargs):
    kwargs.setdefault("samples", 64)
    kwargs.setdefault("seed", 11)
    return VariationGate(
        evaluator or _evaluator(instance), default_variation_model(), **kwargs
    )


class TestVariationGate:
    def test_prime_establishes_reference(self, optimized):
        instance, tree = optimized
        gate = _gate(instance)
        evaluator = gate.evaluator
        report = evaluator.evaluate(tree)
        gate.prime(tree, report)
        reference = gate.reference_p95
        assert reference is not None and reference > 0.0
        # Common random numbers: re-priming on the unchanged tree reproduces
        # the reference exactly.
        gate.prime(tree, report)
        assert gate.reference_p95 == reference

    def test_prime_refreshes_after_ungated_tree_changes(self, optimized):
        # A mixed pipeline (gated pass, then ungated, then gated) must not
        # compare against the stale pre-ungated-pass distribution.
        instance, tree = optimized
        gate = _gate(instance)
        work = tree.clone()
        report = gate.evaluator.evaluate(work)
        gate.prime(work, report)
        stale = gate.reference_p95
        work.add_snake(work.sinks()[0].node_id, 400.0)  # "ungated pass" edit
        gate.prime(work, gate.evaluator.evaluate(work))
        assert gate.reference_p95 != stale

    def test_check_accepts_unchanged_tree_and_commit_promotes(self, optimized):
        instance, tree = optimized
        gate = _gate(instance)
        report = gate.evaluator.evaluate(tree)
        gate.prime(tree, report)
        # Common random numbers: the identical tree reproduces the reference
        # p95 exactly, which is within any non-negative tolerance.
        assert gate.check(tree, report) is None
        gate.commit()
        assert gate.checks == 1
        assert gate.rejections == 0

    def test_check_rejects_p95_regression(self, optimized):
        instance, tree = optimized
        gate = _gate(instance)
        report = gate.evaluator.evaluate(tree)
        gate.prime(tree, report)
        probe = tree.clone()
        # Snaking one sink edge by a lot unbalances the tree: the whole skew
        # distribution (p95 included) shifts up.
        sink_edge = probe.sinks()[0].node_id
        probe.add_snake(sink_edge, 400.0)
        reason = gate.check(probe, report)
        assert reason is not None
        assert REASON_P95_REGRESSION in reason
        assert gate.rejections == 1
        # A rejected check must not move the reference.
        assert gate.check(tree, report) is None

    def test_tolerance_waives_small_regressions(self, optimized):
        instance, tree = optimized
        strict = _gate(instance)
        report = strict.evaluator.evaluate(tree)
        strict.prime(tree, report)
        probe = tree.clone()
        probe.add_snake(probe.sinks()[0].node_id, 400.0)
        regressed_reason = strict.check(probe, report)
        assert regressed_reason is not None
        lenient = _gate(instance, tolerance_ps=1e9)
        lenient.prime(tree, report)
        assert lenient.check(probe, report) is None

    def test_stats_payload(self, optimized):
        instance, tree = optimized
        gate = _gate(instance)
        gate.prime(tree, gate.evaluator.evaluate(tree))
        stats = gate.stats()
        assert stats["samples"] == 64
        assert stats["reference_p95_ps"] == gate.reference_p95
        assert stats["model"]["family"] == "independent"

    def test_parameter_validation(self, optimized):
        instance, _ = optimized
        with pytest.raises(ValueError, match="samples"):
            _gate(instance, samples=1)
        with pytest.raises(ValueError, match="tolerance"):
            _gate(instance, tolerance_ps=-1.0)


class FakeGate:
    """Scripted gate: rejects when told to, records the call protocol."""

    def __init__(self, reject=False):
        self.reject = reject
        self.calls = []

    def prime(self, tree, report):
        self.calls.append("prime")

    def check(self, tree, report):
        self.calls.append("check")
        return "scripted rejection" if self.reject else None

    def commit(self):
        self.calls.append("commit")


class TestIvcGateWiring:
    def _snake_round(self, tree, evaluator, gate, best_objective, length=25.0):
        """One IVC round snaking a sink edge."""
        node_id = tree.sinks()[0].node_id
        return ivc_round(
            tree,
            evaluator,
            lambda: (tree.add_snake(node_id, length) or 1),
            objective="skew",
            best_objective=best_objective,
            gate=gate,
        )

    def test_gate_rejection_rolls_back(self, optimized):
        instance, tree = optimized
        work = tree.clone()
        evaluator = _evaluator(instance)
        fingerprint = tree_fingerprint(work)
        # best_objective=inf makes the nominal triage accept any change, so
        # the gate is the deciding check.
        outcome = self._snake_round(work, evaluator, FakeGate(reject=True), float("inf"))
        assert not outcome.accepted
        assert outcome.reason == "scripted rejection"
        assert tree_fingerprint(work) == fingerprint

    def test_gate_acceptance_commits(self, optimized):
        instance, tree = optimized
        work = tree.clone()
        evaluator = _evaluator(instance)
        gate = FakeGate(reject=False)
        outcome = self._snake_round(work, evaluator, gate, float("inf"))
        assert outcome.accepted
        assert gate.calls == ["check", "commit"]
        assert work.sinks()[0].snake_length == 25.0

    def test_gate_not_consulted_for_non_improving_rounds(self, optimized):
        instance, tree = optimized
        work = tree.clone()
        evaluator = _evaluator(instance)
        gate = FakeGate(reject=True)
        baseline = evaluator.evaluate(work)
        # A huge snake on one sink edge regresses nominal skew, so the cheap
        # triage rejects before the expensive gate runs.
        outcome = self._snake_round(work, evaluator, gate, baseline.skew, length=400.0)
        assert not outcome.accepted
        assert outcome.reason != "scripted rejection"
        assert gate.calls == []


class TestVariationAwarePipeline:
    def test_mc_variants_are_registered(self):
        assert {"tbsz_mc", "twsz_mc", "twsn_mc", "bwsn_mc"} <= set(available_passes())

    def test_gated_flow_runs_and_records_gate_stats(self):
        instance = make_small_instance(sink_count=16, with_obstacles=False)
        config = FlowConfig(
            engine="arnoldi",
            pipeline=list(VARIATION_PIPELINE),
            seed=13,
            variation_samples=48,
        )
        result = ContangoFlow(config).run(instance)
        assert [s.stage for s in result.stages] == [
            "INITIAL", "TBSZ", "TWSZ", "TWSN", "BWSN",
        ]
        assert result.variation_gate["checks"] > 0
        assert result.variation_gate["reference_p95_ps"] is not None
        assert not result.require_report().has_slew_violation

    def test_gated_flow_is_deterministic_from_seed(self):
        instance = make_small_instance(sink_count=16, with_obstacles=False)

        def run():
            config = FlowConfig(
                engine="arnoldi",
                pipeline=list(VARIATION_PIPELINE),
                seed=5,
                variation_samples=32,
            )
            return ContangoFlow(config).run(instance)

        first, second = run(), run()
        assert first.skew == second.skew
        assert first.clr == second.clr
        assert first.variation_gate == second.variation_gate

    def test_nominal_pipeline_has_no_gate(self):
        instance = make_small_instance(sink_count=16, with_obstacles=False)
        result = ContangoFlow(FlowConfig(engine="arnoldi")).run(instance)
        assert result.variation_gate == {}

    def test_spice_engine_rejected_for_gated_pipelines(self):
        instance = make_small_instance(sink_count=16, with_obstacles=False)
        config = FlowConfig(pipeline=list(VARIATION_PIPELINE))
        with pytest.raises(ValueError, match="analytical engine"):
            ContangoFlow(config).run(instance)
