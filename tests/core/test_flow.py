"""Tests for the end-to-end Contango flow (Figure 1)."""

import pytest

from repro.core import ContangoFlow, FlowConfig
from repro.core.report import FlowResult

from repro.testing import make_small_instance


@pytest.fixture(scope="module")
def flow_result() -> FlowResult:
    instance = make_small_instance(sink_count=24)
    return ContangoFlow(FlowConfig(engine="arnoldi")).run(instance)


class TestFlowStructure:
    def test_stage_order_matches_figure_1(self, flow_result):
        assert [s.stage for s in flow_result.stages] == [
            "INITIAL", "TBSZ", "TWSZ", "TWSN", "BWSN",
        ]

    def test_all_optimizations_were_attempted(self, flow_result):
        assert {
            "trunk_sliding", "buffer_sizing", "wiresizing", "wiresnaking", "bottom_level",
        } <= set(flow_result.pass_results)

    def test_final_tree_is_valid_and_buffered(self, flow_result):
        flow_result.tree.validate()
        assert flow_result.tree.buffer_count() > 0

    def test_composite_inverter_was_chosen(self, flow_result):
        assert flow_result.chosen_buffer is not None
        assert "INV_S" in flow_result.chosen_buffer

    def test_stage_lookup(self, flow_result):
        assert flow_result.stage("INITIAL").stage == "INITIAL"
        with pytest.raises(KeyError):
            flow_result.stage("FINAL")


class TestFlowQuality:
    def test_skew_improves_from_initial_to_final(self, flow_result):
        assert flow_result.stage("BWSN").skew_ps <= flow_result.stage("INITIAL").skew_ps

    def test_wire_stages_never_increase_skew(self, flow_result):
        skews = {s.stage: s.skew_ps for s in flow_result.stages}
        assert skews["TWSZ"] <= skews["TBSZ"] + 1e-6
        assert skews["TWSN"] <= skews["TWSZ"] + 1e-6
        assert skews["BWSN"] <= skews["TWSN"] + 1e-6

    def test_final_network_is_slew_clean(self, flow_result):
        assert not flow_result.final_report.has_slew_violation

    def test_final_network_within_capacitance_limit(self, flow_result):
        assert flow_result.final_report.within_capacitance_limit

    def test_polarity_is_correct_at_the_end(self, flow_result):
        assert len(flow_result.tree.wrong_polarity_sinks()) == 0

    def test_clr_exceeds_skew(self, flow_result):
        assert flow_result.clr >= flow_result.skew

    def test_evaluations_counted(self, flow_result):
        assert flow_result.total_evaluations >= 5
        assert flow_result.runtime_s > 0.0

    def test_summary_and_stage_table(self, flow_result):
        summary = flow_result.summary()
        assert summary["flow"] == "contango"
        assert len(flow_result.stage_table()) == 5


class TestFlowConfigurations:
    def test_ablation_switches_disable_passes(self):
        instance = make_small_instance(sink_count=16, with_obstacles=False)
        config = FlowConfig(
            engine="elmore",
            enable_wiresizing=False,
            enable_wiresnaking=False,
            enable_bottom_level=False,
            enable_buffer_sizing=False,
        )
        result = ContangoFlow(config).run(instance)
        assert result.pass_results == {}
        assert [s.stage for s in result.stages] == ["INITIAL", "TBSZ", "TWSZ", "TWSN", "BWSN"]

    def test_large_inverter_ablation(self):
        instance = make_small_instance(sink_count=16, with_obstacles=False)
        config = FlowConfig(engine="elmore", use_composite_inverters=False)
        result = ContangoFlow(config).run(instance)
        assert "INV_L" in result.chosen_buffer

    def test_bounded_skew_initial_tree(self):
        instance = make_small_instance(sink_count=16, with_obstacles=False)
        config = FlowConfig(engine="elmore", skew_bound=20.0)
        result = ContangoFlow(config).run(instance)
        result.tree.validate()

    def test_corner_names_for_slacks(self):
        config = FlowConfig(multicorner_slacks=True)
        assert len(config.corner_names_for_slacks()) == 2
        assert FlowConfig(multicorner_slacks=False).corner_names_for_slacks() is None
