"""Tests for the shared IVC transaction engine (repro.core.ivc).

The property tests pin the two guarantees every pass now relies on:

* a rolled-back round restores the tree bit-for-bit -- content, topology
  *and* journal revisions, so the evaluator's stage cache still recognises
  every stage of the restored tree (cache identity);
* a candidate that violates a constraint is *always* rolled back, whatever
  mutations the proposal applied.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.evaluator import ClockNetworkEvaluator, EvaluatorConfig
from repro.core.ivc import (
    REASON_NO_IMPROVEMENT,
    REASON_SLEW,
    IvcEngine,
    Transaction,
    default_constraints,
    ivc_round,
)
from repro.cts import ispd09_buffer_library, ispd09_wire_library
from repro.testing import make_manual_tree, make_zst_tree, tree_fingerprint


def fresh_evaluator(**overrides) -> ClockNetworkEvaluator:
    # The unit trees are unbuffered, so their tap slews are huge; a generous
    # default limit keeps the slew constraint out of tests that target the
    # objective triage (tests of the constraint path override it down).
    config = dict(engine="elmore", slew_limit=1e6)
    config.update(overrides)
    return ClockNetworkEvaluator(config=EvaluatorConfig(**config))


def edge_ids(tree):
    return [n.node_id for n in tree.nodes() if n.parent is not None]


class TestTransaction:
    def test_commit_keeps_mutations(self):
        tree = make_manual_tree()
        target = edge_ids(tree)[0]
        with Transaction(tree):
            tree.add_snake(target, 42.0)
        assert tree.node(target).snake_length == 42.0

    def test_rollback_restores_mutations(self):
        tree = make_manual_tree()
        before = tree_fingerprint(tree)
        target = edge_ids(tree)[0]
        with Transaction(tree) as txn:
            tree.add_snake(target, 42.0)
            txn.rollback()
        assert tree_fingerprint(tree) == before

    def test_exception_rolls_back(self):
        tree = make_manual_tree()
        before = tree_fingerprint(tree)
        with pytest.raises(RuntimeError):
            with Transaction(tree):
                tree.add_snake(edge_ids(tree)[0], 10.0)
                raise RuntimeError("boom")
        assert tree_fingerprint(tree) == before

    def test_subtree_removal_rolls_back_fully_linked(self):
        # Regression: the subtree root's pre-image must be journaled while it
        # still points at its parent, or rollback resurrects it half-detached.
        tree = make_manual_tree()
        hub = tree.root.children[0]
        before = tree_fingerprint(tree)
        with Transaction(tree) as txn:
            tree.remove_subtree(hub)
            txn.rollback()
        assert tree_fingerprint(tree) == before
        assert tree.node(hub).parent == tree.root_id
        tree.validate()

    def test_structural_surgery_rolls_back(self):
        tree = make_manual_tree()
        buffers = ispd09_buffer_library()
        before = tree_fingerprint(tree)
        with Transaction(tree) as txn:
            new_node = tree.split_edge(edge_ids(tree)[0], 0.5)
            tree.place_buffer(new_node, buffers.smallest)
            tree.remove_buffer(new_node)
            txn.rollback()
        assert tree_fingerprint(tree) == before
        tree.validate()


class TestIvcRound:
    def test_accepting_round_commits_and_reports(self):
        tree = make_zst_tree(10)
        evaluator = fresh_evaluator()
        baseline = evaluator.evaluate(tree)
        # Comparing against +inf forces the objective check to pass, so the
        # round exercises the commit path.
        target = edge_ids(tree)[0]
        outcome = ivc_round(
            tree,
            evaluator,
            lambda: (tree.add_snake(target, 5.0), 1)[1],
            objective="skew",
            best_objective=float("inf"),
        )
        assert outcome.accepted and outcome.changed == 1
        assert outcome.report is not None
        assert tree.node(target).snake_length == 5.0
        assert outcome.report.evaluation_index > baseline.evaluation_index

    def test_empty_round_spends_no_evaluation(self):
        tree = make_zst_tree(10)
        evaluator = fresh_evaluator()
        runs_before = evaluator.run_count
        outcome = ivc_round(
            tree, evaluator, lambda: 0, objective="skew", best_objective=0.0
        )
        assert not outcome.accepted and outcome.report is None
        assert evaluator.run_count == runs_before

    def test_no_improvement_is_rolled_back(self):
        tree = make_zst_tree(10)
        evaluator = fresh_evaluator()
        before = tree_fingerprint(tree)
        target = edge_ids(tree)[0]
        outcome = ivc_round(
            tree,
            evaluator,
            lambda: (tree.add_snake(target, 5.0), 1)[1],
            objective="skew",
            best_objective=float("-inf"),  # nothing can improve on -inf
        )
        assert not outcome.accepted
        assert outcome.reason == REASON_NO_IMPROVEMENT
        assert tree_fingerprint(tree) == before

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000), moves=st.integers(1, 8))
    def test_rollback_restores_tree_hash(self, seed, moves):
        """Property: whatever a rejected proposal did, rollback undoes it."""
        import random

        tree = make_zst_tree(12, seed=3)
        wirelib = ispd09_wire_library()
        buffers = ispd09_buffer_library()
        evaluator = fresh_evaluator()
        before = tree_fingerprint(tree)

        def mutate() -> int:
            rng = random.Random(seed)
            ids = edge_ids(tree)
            for _ in range(moves):
                node_id = rng.choice(ids)
                action = rng.randrange(4)
                if action == 0:
                    tree.add_snake(node_id, rng.uniform(1.0, 80.0))
                elif action == 1:
                    tree.set_wire_type(node_id, rng.choice(list(wirelib)))
                elif action == 2:
                    tree.place_buffer(node_id, buffers.smallest.parallel(rng.choice((1, 2, 4))))
                else:
                    split = tree.split_edge(node_id, rng.uniform(0.2, 0.8))
                    ids.append(split)
            return moves

        outcome = ivc_round(
            tree,
            evaluator,
            mutate,
            objective="skew",
            best_objective=float("-inf"),  # force the no-improvement rejection
        )
        assert not outcome.accepted
        assert tree_fingerprint(tree) == before
        tree.validate()

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_constraint_violations_always_roll_back(self, seed):
        """Property: a constraint-violating candidate never survives."""
        import random

        tree = make_zst_tree(12, seed=5)
        evaluator = fresh_evaluator(slew_limit=1e-3)  # everything violates slew
        before = tree_fingerprint(tree)

        def mutate() -> int:
            rng = random.Random(seed)
            for node_id in rng.sample(edge_ids(tree), 3):
                tree.add_snake(node_id, rng.uniform(10.0, 200.0))
            return 3

        outcome = ivc_round(
            tree,
            evaluator,
            mutate,
            objective="skew",
            best_objective=float("inf"),
            constraints=default_constraints,
        )
        assert not outcome.accepted
        assert outcome.reason == REASON_SLEW
        assert tree_fingerprint(tree) == before

    def test_rollback_preserves_evaluator_cache_identity(self):
        """After a rejected round, re-evaluating costs only cache hits."""
        tree = make_zst_tree(16)
        evaluator = fresh_evaluator()
        baseline = evaluator.evaluate(tree)
        target = edge_ids(tree)[0]
        outcome = ivc_round(
            tree,
            evaluator,
            lambda: (tree.add_snake(target, 5.0), 1)[1],
            objective="skew",
            best_objective=float("-inf"),  # force rejection
        )
        assert not outcome.accepted
        stats_before = evaluator.cache_stats()
        again = evaluator.evaluate(tree)
        stats_after = evaluator.cache_stats()
        # The rolled-back tree is content-identical to the baseline: every
        # stage must come from the cache, with zero new analyses.
        assert stats_after["misses"] == stats_before["misses"]
        assert stats_after["hits"] > stats_before["hits"]
        assert again.skew == baseline.skew
        assert again.clr == baseline.clr


class TestIvcEngine:
    def test_engine_reuses_baseline_without_reevaluating(self):
        tree = make_zst_tree(10)
        evaluator = fresh_evaluator()
        baseline = evaluator.evaluate(tree)
        runs = evaluator.run_count
        engine = IvcEngine("t", tree, evaluator, objective="skew", baseline=baseline)
        assert engine.report is baseline
        assert evaluator.run_count == runs

    def test_abort_produces_closed_result(self):
        tree = make_zst_tree(10)
        evaluator = fresh_evaluator()
        engine = IvcEngine("t", tree, evaluator, objective="skew")
        result = engine.abort("nothing to do")
        assert result.notes == ["nothing to do"]
        assert result.final_report is engine.report
        assert not result.improved

    def test_retry_halves_aggressiveness_and_stops_after_three(self):
        tree = make_zst_tree(10)
        evaluator = fresh_evaluator()
        engine = IvcEngine("t", tree, evaluator, objective="skew")
        seen = []
        target = edge_ids(tree)[0]

        def propose(state):
            seen.append(round(state.aggressiveness, 6))
            tree.add_snake(target, 1.0)
            return 1

        result = engine.run(propose, max_rounds=10)
        # Snaking an edge of a zero-skew tree cannot improve skew, so every
        # round is rejected; three consecutive rejections stop the loop.
        assert seen == [1.0, 0.5, 0.25]
        assert result.rounds == 0 and not result.improved
        assert len(result.notes) == 3
        assert all("rejected" in note for note in result.notes)

    def test_custom_reject_note_includes_iteration(self):
        tree = make_zst_tree(10)
        evaluator = fresh_evaluator()
        engine = IvcEngine("t", tree, evaluator, objective="skew")
        target = edge_ids(tree)[0]
        result = engine.run(
            lambda state: (tree.add_snake(target, 1.0), 1)[1],
            max_rounds=5,
            max_consecutive_rejections=1,
            reject_note="iteration {iteration} rejected: {reason}",
        )
        assert result.notes == ["iteration 1 rejected: no improvement"]
