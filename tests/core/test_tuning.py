"""Tests for the shared tuning machinery (objectives, slew budget, impact models)."""

import pytest

from repro.analysis import ClockNetworkEvaluator, EvaluatorConfig
from repro.core.tuning import (
    SlewBudget,
    calibrate_downsize_model,
    calibrate_snake_model,
    objective_value,
    select_independent_middle_edges,
    stage_local_downstream_capacitance,
    stage_slew_headroom,
)
from repro.cts import ispd09_wire_library

from repro.testing import make_manual_tree, make_zst_tree

WIRES = ispd09_wire_library()


def evaluated(tree):
    evaluator = ClockNetworkEvaluator(EvaluatorConfig(engine="arnoldi"))
    return evaluator, evaluator.evaluate(tree)


class TestObjectives:
    def test_skew_and_clr_objectives(self, manual_tree):
        _, report = evaluated(manual_tree)
        assert objective_value(report, "skew") == pytest.approx(report.skew)
        assert objective_value(report, "clr") == pytest.approx(report.clr)
        assert objective_value(report, "combined") == pytest.approx(report.skew + report.clr)

    def test_unknown_objective(self, manual_tree):
        _, report = evaluated(manual_tree)
        with pytest.raises(ValueError):
            objective_value(report, "power")


class TestSlewBudget:
    def test_unknown_edge_has_infinite_headroom(self):
        budget = SlewBudget({}, {})
        assert budget.available(42) == float("inf")
        assert budget.allows_delay(42, 1e9)

    def test_consumption_reduces_availability(self):
        budget = SlewBudget({1: 0, 2: 0}, {0: 20.0})
        assert budget.allows_delay(1, 4.0)
        budget.consume_delay(1, 4.0)
        assert budget.available(2) == pytest.approx(20.0 - 2.2 * 4.0)

    def test_max_delay_scales_with_headroom(self):
        budget = SlewBudget({1: 0}, {0: 22.0})
        assert budget.max_delay(1, guard=1.0) == pytest.approx(10.0)

    def test_edges_of_same_stage_share_budget(self):
        budget = SlewBudget({1: 0, 2: 0}, {0: 10.0})
        budget.consume_delay(1, 3.0)
        budget.consume_delay(2, 2.0)
        assert budget.available(1) == budget.available(2) == pytest.approx(10.0 - 2.2 * 5.0)

    def test_headroom_from_report(self, manual_tree):
        _, report = evaluated(manual_tree)
        budget = stage_slew_headroom(manual_tree, report)
        for node in manual_tree.nodes():
            if node.parent is not None:
                assert budget.available(node.node_id) <= report.slew_limit


class TestStageLocalCapacitance:
    def test_buffer_isolates_downstream_stage(self, manual_tree):
        caps = stage_local_downstream_capacitance(manual_tree)
        buffered = [n for n in manual_tree.nodes() if n.has_buffer][0]
        # The buffered node's stage-local load is its own input pin plus half
        # of its parent edge -- the wires below the buffer belong to the next stage.
        assert caps[buffered.node_id] < manual_tree.total_capacitance() / 2.0

    def test_leaf_cap_is_sink_plus_half_edge(self, manual_tree):
        caps = stage_local_downstream_capacitance(manual_tree)
        sink = manual_tree.sinks()[0]
        expected = sink.sink.capacitance + 0.5 * manual_tree.edge_capacitance(sink.node_id)
        assert caps[sink.node_id] == pytest.approx(expected)


class TestIndependentEdges:
    def test_selected_edges_are_independent(self):
        tree = make_zst_tree(sink_count=30)
        chosen = select_independent_middle_edges(tree, count=5)
        assert chosen
        for i, a in enumerate(chosen):
            subtree = set(tree.subtree_node_ids(a))
            for b in chosen[i + 1:]:
                assert b not in subtree
                assert a not in set(tree.subtree_node_ids(b))

    def test_count_is_respected(self):
        tree = make_zst_tree(sink_count=40)
        assert len(select_independent_middle_edges(tree, count=3)) <= 3


class TestCalibratedModels:
    def test_downsize_model_predicts_positive_impact(self):
        tree = make_zst_tree(sink_count=24)
        evaluator, report = evaluated(tree)
        model = calibrate_downsize_model(tree, evaluator, WIRES, report)
        assert model is not None
        assert 0.25 <= model.calibration <= 3.0
        edge = select_independent_middle_edges(tree, count=1)[0]
        assert model.predicted_delay(tree, WIRES, edge) > 0.0

    def test_downsize_model_none_when_nothing_downsizable(self):
        tree = make_zst_tree(sink_count=10)
        for node in tree.nodes():
            if node.parent is not None:
                tree.set_wire_type(node.node_id, WIRES.narrowest)
        evaluator, report = evaluated(tree)
        assert calibrate_downsize_model(tree, evaluator, WIRES, report) is None

    def test_snake_model_roundtrip(self):
        tree = make_zst_tree(sink_count=24)
        evaluator, report = evaluated(tree)
        model = calibrate_snake_model(tree, evaluator, report, unit_length=20.0)
        assert model is not None
        edge = select_independent_middle_edges(tree, count=1)[0]
        budget = 5.0
        length = model.length_for_delay(tree, edge, budget)
        assert model.delay_for_length(tree, edge, length) == pytest.approx(budget, rel=1e-6)

    def test_snake_model_monotone_in_length(self):
        tree = make_zst_tree(sink_count=24)
        evaluator, report = evaluated(tree)
        model = calibrate_snake_model(tree, evaluator, report, unit_length=20.0)
        edge = select_independent_middle_edges(tree, count=1)[0]
        assert model.delay_for_length(tree, edge, 40.0) > model.delay_for_length(tree, edge, 20.0)

    def test_calibration_uses_one_extra_evaluation(self):
        tree = make_zst_tree(sink_count=24)
        evaluator, report = evaluated(tree)
        runs_before = evaluator.run_count
        calibrate_snake_model(tree, evaluator, report, unit_length=20.0)
        assert evaluator.run_count == runs_before + 1

    def test_invalid_unit_length(self):
        tree = make_zst_tree(sink_count=8)
        evaluator, report = evaluated(tree)
        with pytest.raises(ValueError):
            calibrate_snake_model(tree, evaluator, report, unit_length=0.0)
