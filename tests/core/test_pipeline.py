"""Tests for the pass-pipeline architecture (repro.core.pipeline).

The golden test is the refactor's safety net: the pipeline-driven
``ContangoFlow``, configured with the pre-refactor buffer-sizing rejection
policy (``sizing_max_rejections=1``, i.e. stop on first rejection), must
reproduce the Table III stage records captured from the monolithic
pre-refactor flow on the seeded 200-sink TI instance *bit-for-bit* (wall
clock excluded).  The default policy -- retry with halved growth -- is then
asserted to be no worse.
"""

import json
from pathlib import Path

import pytest

from repro.core import (
    ContangoFlow,
    FlowConfig,
    FlowResult,
    OptimizationPass,
    PipelineDriver,
    available_passes,
    register_pass,
    resolve_pipeline,
)
from repro.core.pipeline import PassContext
from repro.testing import make_small_instance
from repro.workloads import generate_ti_benchmark

GOLDEN_PATH = Path(__file__).parent.parent / "golden" / "ti200_arnoldi_stage_table.json"


@pytest.fixture(scope="module")
def ti200():
    return generate_ti_benchmark(200)


class TestGoldenParity:
    def test_pipeline_flow_reproduces_pre_refactor_stage_table(self, ti200):
        golden = json.loads(GOLDEN_PATH.read_text())["stage_table"]
        config = FlowConfig(engine="arnoldi", sizing_max_rejections=1)
        result = ContangoFlow(config).run(ti200)
        table = result.stage_table()
        for row in table:
            row.pop("elapsed_s")  # wall-clock: not reproducible bit-for-bit
        assert table == golden

    def test_default_retry_policy_matches_its_own_golden(self, ti200):
        # The retry-at-halved-growth policy is instance-dependent: it beat the
        # stop-on-first-rejection policy on the legacy ti200 instance but not
        # on the repro.seeding-generated one, so superiority cannot be
        # asserted.  What must hold is stability: the default config's final
        # metrics are pinned bit-for-bit alongside the parity table.
        golden = json.loads(GOLDEN_PATH.read_text())["default_policy_final"]
        result = ContangoFlow(FlowConfig(engine="arnoldi")).run(ti200)
        assert result.skew == pytest.approx(golden["skew_ps"], abs=1e-9)
        assert result.clr == pytest.approx(golden["clr_ps"], abs=1e-9)
        assert not result.require_report().has_slew_violation


class TestRegistry:
    def test_default_passes_are_registered(self):
        assert {"initial", "tbsz", "twsz", "twsn", "bwsn"} <= set(available_passes())

    def test_unknown_pass_raises_with_choices(self):
        with pytest.raises(KeyError, match="unknown optimization pass"):
            resolve_pipeline(["definitely_not_a_pass"])

    def test_duplicate_registration_rejected(self):
        class Duplicate(OptimizationPass):
            name = "initial"

        with pytest.raises(ValueError, match="already registered"):
            register_pass(Duplicate)

    def test_unnamed_pass_rejected(self):
        class Nameless(OptimizationPass):
            pass

        with pytest.raises(ValueError, match="non-empty 'name'"):
            register_pass(Nameless)

    def test_baseline_passes_resolve_lazily(self):
        passes = resolve_pipeline(["unoptimized_dme"])
        assert passes[0].name == "unoptimized_dme"


class TestCustomPipelines:
    def test_truncated_pipeline_runs_selected_stages_only(self):
        instance = make_small_instance(sink_count=16, with_obstacles=False)
        config = FlowConfig(engine="elmore", pipeline=["initial", "twsz"])
        result = ContangoFlow(config).run(instance)
        assert [s.stage for s in result.stages] == ["INITIAL", "TWSZ"]
        assert set(result.pass_results) <= {"wiresizing"}
        result.require_tree().validate()

    def test_baseline_pass_mixes_into_a_pipeline(self):
        instance = make_small_instance(sink_count=16, with_obstacles=False)
        config = FlowConfig(engine="elmore", pipeline=["unoptimized_dme", "twsn"])
        result = ContangoFlow(config).run(instance)
        assert [s.stage for s in result.stages] == ["FINAL", "TWSN"]

    def test_pipeline_without_construction_pass_fails_clearly(self):
        instance = make_small_instance(sink_count=8, with_obstacles=False)
        config = FlowConfig(engine="elmore", pipeline=["twsz"])
        with pytest.raises(RuntimeError, match="construction pass"):
            ContangoFlow(config).run(instance)

    def test_driver_accepts_pass_instances(self):
        recorded = []

        class Probe(OptimizationPass):
            name = "probe-instance"

            def run(self, ctx: PassContext) -> None:
                recorded.append(ctx.instance.name)

        instance = make_small_instance(sink_count=8, with_obstacles=False)
        driver = PipelineDriver(["initial", Probe()], flow_name="probed")
        result = driver.run(instance, FlowConfig(engine="elmore"))
        assert recorded == [instance.name]
        assert result.flow_name == "probed"


class TestFlowResultAccessors:
    def test_unpopulated_result_raises_on_access(self):
        result = FlowResult(instance_name="x", flow_name="y")
        with pytest.raises(ValueError, match="no tree"):
            result.require_tree()
        with pytest.raises(ValueError, match="no final report"):
            result.require_report()
        with pytest.raises(ValueError):
            _ = result.skew

    def test_populated_result_passes_through(self):
        instance = make_small_instance(sink_count=8, with_obstacles=False)
        config = FlowConfig(
            engine="elmore",
            enable_buffer_sizing=False,
            enable_wiresizing=False,
            enable_wiresnaking=False,
            enable_bottom_level=False,
        )
        result = ContangoFlow(config).run(instance)
        assert result.require_tree() is result.tree
        assert result.require_report() is result.final_report
        assert result.skew == result.final_report.skew
