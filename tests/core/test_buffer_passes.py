"""Tests for trunk buffer sliding/interleaving and iterative buffer sizing."""

import pytest

from repro.analysis import ClockNetworkEvaluator, EvaluatorConfig
from repro.buffering.fast_buffering import insert_buffers_with_sizing
from repro.core.buffer_sizing import (
    bottom_level_buffers,
    buffer_depths,
    iterative_buffer_sizing,
)
from repro.core.buffer_sliding import (
    find_trunk_chain,
    slide_and_interleave_trunk,
    trunk_buffer_nodes,
)
from repro.core.polarity import correct_sink_polarity, count_inverted_sinks
from repro.cts import ispd09_buffer_library

from repro.testing import make_manual_tree, make_zst_tree

BUFS = ispd09_buffer_library()


def buffered_tree(sink_count=28, seed=31):
    tree = make_zst_tree(sink_count=sink_count, seed=seed)
    sweep = insert_buffers_with_sizing(
        tree,
        [BUFS.by_name("INV_S").parallel(8), BUFS.by_name("INV_S").parallel(16)],
        capacitance_limit=1e9,
    )
    buffered = sweep.tree
    correct_sink_polarity(
        buffered, BUFS.by_name("INV_S"),
        stronger_inverters=[BUFS.by_name("INV_S").parallel(k) for k in (2, 4, 8)],
    )
    return buffered


def fresh_evaluator(cap_limit=1e9):
    return ClockNetworkEvaluator(EvaluatorConfig(engine="arnoldi"), capacitance_limit=cap_limit)


class TestTrunkChain:
    def test_chain_starts_at_root(self):
        tree = buffered_tree()
        chain = find_trunk_chain(tree)
        assert chain[0] == tree.root_id
        assert len(chain) >= 2

    def test_chain_is_single_child_path(self):
        tree = buffered_tree()
        chain = find_trunk_chain(tree)
        for node_id in chain[:-1]:
            assert len(tree.node(node_id).children) == 1

    def test_trunk_buffer_nodes_subset_of_chain(self):
        tree = buffered_tree()
        chain = set(find_trunk_chain(tree))
        assert set(trunk_buffer_nodes(tree)) <= chain


class TestSlidingAndInterleaving:
    def test_polarity_preserved(self):
        tree = buffered_tree()
        assert count_inverted_sinks(tree) == 0
        slide_and_interleave_trunk(tree, fresh_evaluator())
        assert count_inverted_sinks(tree) == 0
        tree.validate()

    def test_objective_never_degrades(self):
        tree = buffered_tree()
        evaluator = fresh_evaluator()
        before = evaluator.evaluate(tree).clr
        slide_and_interleave_trunk(tree, evaluator, objective="clr")
        after = evaluator.evaluate(tree).clr
        assert after <= before + 1e-6

    def test_rejected_change_is_rolled_back(self):
        tree = buffered_tree()
        evaluator = fresh_evaluator()
        snapshot = tree.clone()
        result = slide_and_interleave_trunk(tree, evaluator)
        if not result.improved:
            assert tree.buffer_count() == snapshot.buffer_count()
            assert tree.total_wirelength() == pytest.approx(snapshot.total_wirelength())

    def test_degenerate_tree_without_trunk(self):
        tree = make_manual_tree()
        # The manual tree's root has two children, so there is no trunk chain.
        result = slide_and_interleave_trunk(tree, fresh_evaluator())
        assert result.rounds <= 1


class TestBufferDepthHelpers:
    def test_buffer_depths_start_at_one(self):
        tree = buffered_tree()
        depths = buffer_depths(tree)
        assert depths
        assert min(depths.values()) == 1

    def test_bottom_level_buffers_have_no_buffered_descendants(self):
        tree = buffered_tree()
        bottom = set(bottom_level_buffers(tree))
        assert bottom
        for node_id in bottom:
            below = tree.subtree_node_ids(node_id)
            assert not any(tree.node(b).has_buffer for b in below if b != node_id)


class TestIterativeBufferSizing:
    def test_objective_never_degrades(self):
        tree = buffered_tree()
        evaluator = fresh_evaluator()
        before = evaluator.evaluate(tree).clr
        iterative_buffer_sizing(tree, evaluator, capacitance_limit=1e9, objective="clr")
        after = evaluator.evaluate(tree).clr
        assert after <= before + 1e-6

    def test_capacitance_limit_respected(self):
        tree = buffered_tree()
        evaluator_probe = fresh_evaluator()
        cap_now = evaluator_probe.evaluate(tree).total_capacitance
        limit = cap_now * 1.02
        evaluator = fresh_evaluator(cap_limit=limit)
        iterative_buffer_sizing(tree, evaluator, capacitance_limit=limit)
        assert tree.total_capacitance() <= limit + 1e-6

    def test_accepted_iterations_grow_trunk_buffers(self):
        tree = buffered_tree()
        trunk_before = {
            node_id: tree.node(node_id).buffer.input_cap for node_id in trunk_buffer_nodes(tree)
        }
        result = iterative_buffer_sizing(tree, fresh_evaluator(), capacitance_limit=1e9)
        if result.improved:
            trunk_after = {
                node_id: tree.node(node_id).buffer.input_cap
                for node_id in trunk_buffer_nodes(tree)
            }
            assert any(trunk_after[n] > trunk_before[n] for n in trunk_before if n in trunk_after)

    def test_unbuffered_tree_is_a_noop(self):
        tree = make_zst_tree(sink_count=8)
        result = iterative_buffer_sizing(tree, fresh_evaluator(), capacitance_limit=1e9)
        assert not result.improved
        assert result.rounds == 0

    def test_no_slew_violation_introduced(self):
        tree = buffered_tree()
        evaluator = fresh_evaluator()
        iterative_buffer_sizing(tree, evaluator, capacitance_limit=1e9)
        assert not evaluator.evaluate(tree).has_slew_violation
