"""Tests for the slow-down/speed-up slack framework (Defs 1-2, Lemmas 1-2, Prop 1)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import ClockNetworkEvaluator, EvaluatorConfig
from repro.core.slack import annotate_tree_slacks, compute_sink_slacks

from repro.testing import make_manual_tree, make_zst_tree


def evaluate(tree):
    return ClockNetworkEvaluator(EvaluatorConfig(engine="arnoldi")).evaluate(tree)


class TestSinkSlacks:
    def test_slacks_are_non_negative(self, manual_tree):
        slacks = compute_sink_slacks(evaluate(manual_tree))
        assert all(v >= 0.0 for v in slacks.slow.values())
        assert all(v >= 0.0 for v in slacks.fast.values())

    def test_slowest_sink_has_zero_slow_slack(self, manual_tree):
        slacks = compute_sink_slacks(evaluate(manual_tree))
        assert slacks.slow[slacks.worst_sink()] == pytest.approx(0.0, abs=1e-9)

    def test_fastest_sink_has_zero_fast_slack(self, manual_tree):
        slacks = compute_sink_slacks(evaluate(manual_tree))
        assert slacks.fast[slacks.fastest_sink()] == pytest.approx(0.0, abs=1e-9)

    def test_definition_1_slow_plus_fast_equals_spread(self, manual_tree):
        """Per transition, Slack_slow(s) + Slack_fast(s) = Tmax - Tmin."""
        report = evaluate(manual_tree)
        slacks = compute_sink_slacks(report, transitions=("rise",))
        rise = {s: v["rise"] for s, v in report.nominal.latency.items()}
        spread = max(rise.values()) - min(rise.values())
        for sink_id in rise:
            assert slacks.slow[sink_id] + slacks.fast[sink_id] == pytest.approx(spread)

    def test_multicorner_slack_is_minimum(self, manual_tree):
        report = evaluate(manual_tree)
        single = compute_sink_slacks(report, corners=[report.fast_corner])
        multi = compute_sink_slacks(report, corners=list(report.corners))
        for sink_id in single.slow:
            assert multi.slow[sink_id] <= single.slow[sink_id] + 1e-9

    def test_transition_restriction(self, manual_tree):
        report = evaluate(manual_tree)
        both = compute_sink_slacks(report)
        rise_only = compute_sink_slacks(report, transitions=("rise",))
        for sink_id in both.slow:
            assert both.slow[sink_id] <= rise_only.slow[sink_id] + 1e-9


class TestEdgeSlacks:
    def test_lemma1_edge_slack_is_min_over_downstream_sinks(self):
        tree = make_zst_tree(sink_count=20)
        report = evaluate(tree)
        annotation = annotate_tree_slacks(tree, report)
        downstream = tree.downstream_sinks_map()
        for node_id, slack in annotation.edge_slow.items():
            expected = min(annotation.sink.slow[s] for s in downstream[node_id])
            assert slack == pytest.approx(expected)

    def test_lemma2_monotonicity_down_the_tree(self):
        tree = make_zst_tree(sink_count=20)
        annotation = annotate_tree_slacks(tree, evaluate(tree))
        for node in tree.nodes():
            if node.parent is None or node.node_id not in annotation.edge_slow:
                continue
            parent_slack = annotation.edge_slow.get(node.parent)
            if parent_slack is None:
                continue
            assert annotation.edge_slow[node.node_id] >= parent_slack - 1e-9
            assert annotation.edge_fast[node.node_id] >= annotation.edge_fast[node.parent] - 1e-9

    def test_root_edge_slack_is_zero(self):
        tree = make_zst_tree(sink_count=16)
        annotation = annotate_tree_slacks(tree, evaluate(tree))
        assert annotation.edge_slow[tree.root_id] == pytest.approx(0.0, abs=1e-9)

    def test_proposition1_deltas_sum_to_sink_slack(self):
        """Applying Delta_slow(e) along any root-to-sink path retires exactly
        that sink's slow-down slack (Proposition 1)."""
        tree = make_zst_tree(sink_count=24)
        annotation = annotate_tree_slacks(tree, evaluate(tree))
        for sink in tree.sinks():
            path = [n for n in tree.path_to_root(sink.node_id) if n.parent is not None]
            total_delta = sum(annotation.delta_slow.get(n.node_id, 0.0) for n in path)
            assert total_delta == pytest.approx(annotation.sink.slow[sink.node_id], abs=1e-6)

    def test_deltas_are_non_negative(self):
        tree = make_zst_tree(sink_count=20)
        annotation = annotate_tree_slacks(tree, evaluate(tree))
        assert all(d >= -1e-9 for d in annotation.delta_slow.values())
        assert all(d >= -1e-9 for d in annotation.delta_fast.values())

    def test_normalized_slack_range(self):
        tree = make_zst_tree(sink_count=20)
        annotation = annotate_tree_slacks(tree, evaluate(tree))
        values = annotation.normalized_edge_slow().values()
        assert all(0.0 <= v <= 1.0 for v in values)
        assert max(values) == pytest.approx(1.0)


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=4, max_value=30), st.integers(min_value=0, max_value=500))
def test_slack_invariants_hold_on_random_trees(count, seed):
    """Property test of Lemma 1/2 and Proposition 1 over random ZST instances."""
    tree = make_zst_tree(sink_count=count, seed=seed)
    report = ClockNetworkEvaluator(EvaluatorConfig(engine="elmore")).evaluate(tree)
    annotation = annotate_tree_slacks(tree, report)
    downstream = tree.downstream_sinks_map()
    for node_id, slack in annotation.edge_slow.items():
        assert slack == pytest.approx(
            min(annotation.sink.slow[s] for s in downstream[node_id]), abs=1e-6
        )
    for sink in tree.sinks():
        path = [n for n in tree.path_to_root(sink.node_id) if n.parent is not None]
        total = sum(annotation.delta_slow.get(n.node_id, 0.0) for n in path)
        assert total == pytest.approx(annotation.sink.slow[sink.node_id], abs=1e-6)
