"""Tests for sink-polarity correction (Proposition 2, Table II)."""

import pytest

from repro.buffering.fast_buffering import insert_buffers_with_sizing
from repro.core.polarity import correct_sink_polarity, count_inverted_sinks
from repro.cts import ClockTree, Sink, ispd09_buffer_library, ispd09_wire_library
from repro.geometry import Point

from repro.testing import make_zst_tree

WIRES = ispd09_wire_library()
BUFS = ispd09_buffer_library()
SMALL = BUFS.by_name("INV_S")
STRONGER = [SMALL.parallel(k) for k in (2, 4, 8, 16)]


def buffered_random_tree(sink_count=24, seed=9):
    tree = make_zst_tree(sink_count=sink_count, seed=seed)
    result = insert_buffers_with_sizing(
        tree, [SMALL.parallel(8), SMALL.parallel(16)], capacitance_limit=1e9
    )
    return result.tree


def hand_tree_with_inverted_cluster():
    """One inverter drives a 3-sink cluster (wrong polarity) plus one direct sink."""
    tree = ClockTree(Point(0, 0), default_wire=WIRES.widest)
    hub = tree.add_internal(tree.root_id, Point(200, 0))
    tree.place_buffer(hub, SMALL.parallel(8))
    cluster = tree.add_internal(hub, Point(400, 0))
    for i, dy in enumerate((-50, 0, 50)):
        tree.add_sink(cluster, Point(500, dy), Sink(f"c{i}", 15.0))
    tree.add_sink(tree.root_id, Point(50, 80), Sink("direct", 10.0))
    return tree


class TestCounting:
    def test_clean_tree_has_no_inverted_sinks(self):
        tree = make_zst_tree(sink_count=8)
        assert count_inverted_sinks(tree) == 0

    def test_inverted_cluster_is_counted(self):
        tree = hand_tree_with_inverted_cluster()
        assert count_inverted_sinks(tree) == 3


class TestSubtreeStrategy:
    def test_all_sinks_corrected(self):
        tree = buffered_random_tree()
        result = correct_sink_polarity(tree, SMALL, strategy="subtree", stronger_inverters=STRONGER)
        assert result.inverted_sinks_after == 0
        assert count_inverted_sinks(tree) == 0
        tree.validate()

    def test_cluster_fixed_with_single_inverter(self):
        tree = hand_tree_with_inverted_cluster()
        result = correct_sink_polarity(tree, SMALL, strategy="subtree", stronger_inverters=STRONGER)
        assert result.inverters_added == 1
        assert count_inverted_sinks(tree) == 0

    def test_fewer_inverters_than_inverted_sinks(self):
        tree = buffered_random_tree(sink_count=32)
        inverted = count_inverted_sinks(tree)
        if inverted < 2:
            pytest.skip("buffering happened to produce uniform polarity")
        result = correct_sink_polarity(tree, SMALL, strategy="subtree", stronger_inverters=STRONGER)
        assert result.inverters_added <= inverted

    def test_at_most_one_corrective_inverter_per_path(self):
        tree = buffered_random_tree(sink_count=32)
        before_ids = set(tree.node_ids())
        correct_sink_polarity(tree, SMALL, strategy="subtree", stronger_inverters=STRONGER)
        added_buffers = {
            n.node_id
            for n in tree.buffers()
            if n.node_id not in before_ids or (n.node_id in before_ids and n.buffer is not None and n.buffer.base_name == "INV_S" and n.buffer.parallel_count <= 16)
        }
        for sink in tree.sinks():
            path_ids = {n.node_id for n in tree.path_to_root(sink.node_id)}
            # Count only inverters that the corrector could have added (new nodes).
            new_on_path = [nid for nid in path_ids if nid not in before_ids and tree.node(nid).has_buffer]
            assert len(new_on_path) <= 1

    def test_noop_when_polarity_already_correct(self):
        tree = make_zst_tree(sink_count=10)
        result = correct_sink_polarity(tree, SMALL)
        assert result.inverters_added == 0

    def test_minimality_on_hand_tree(self):
        """The minimal antichain cover of the inverted cluster is exactly one node."""
        tree = hand_tree_with_inverted_cluster()
        per_sink_tree = hand_tree_with_inverted_cluster()
        minimal = correct_sink_polarity(tree, SMALL, strategy="subtree", stronger_inverters=STRONGER)
        naive = correct_sink_polarity(per_sink_tree, SMALL, strategy="per-sink")
        assert minimal.inverters_added == 1
        assert naive.inverters_added == 3


class TestPerSinkStrategy:
    def test_adds_one_inverter_per_inverted_sink(self):
        tree = hand_tree_with_inverted_cluster()
        result = correct_sink_polarity(tree, SMALL, strategy="per-sink")
        assert result.inverters_added == 3
        assert count_inverted_sinks(tree) == 0

    def test_unknown_strategy_rejected(self):
        tree = hand_tree_with_inverted_cluster()
        with pytest.raises(ValueError):
            correct_sink_polarity(tree, SMALL, strategy="random")

    def test_non_inverting_buffer_rejected(self):
        from dataclasses import replace

        tree = hand_tree_with_inverted_cluster()
        with pytest.raises(ValueError):
            correct_sink_polarity(tree, replace(SMALL, inverting=False), strategy="per-sink")


class TestRequiredPolarity:
    def test_sink_requiring_inverted_clock(self):
        tree = ClockTree(Point(0, 0), default_wire=WIRES.widest)
        sink = tree.add_sink(tree.root_id, Point(100, 0), Sink("inv", 10.0, required_polarity=1))
        assert count_inverted_sinks(tree) == 1
        correct_sink_polarity(tree, SMALL, strategy="subtree", stronger_inverters=STRONGER)
        assert count_inverted_sinks(tree) == 0
