"""Tests for SVG clock-tree rendering."""

from repro.analysis import ClockNetworkEvaluator, EvaluatorConfig
from repro.core.slack import annotate_tree_slacks
from repro.geometry import Obstacle, ObstacleSet, Rect
from repro.viz import render_tree_svg, save_tree_svg

from repro.testing import make_manual_tree, make_zst_tree


class TestRendering:
    def test_svg_document_structure(self, manual_tree):
        svg = render_tree_svg(manual_tree)
        assert svg.startswith("<svg")
        assert svg.rstrip().endswith("</svg>")

    def test_sinks_drawn_as_crosses(self, manual_tree):
        svg = render_tree_svg(manual_tree)
        assert svg.count("<path") == manual_tree.sink_count()

    def test_buffers_drawn_as_blue_rectangles(self, manual_tree):
        svg = render_tree_svg(manual_tree)
        assert svg.count("#1f5fd0") == manual_tree.buffer_count()

    def test_every_edge_drawn(self, manual_tree):
        svg = render_tree_svg(manual_tree)
        edges = sum(1 for n in manual_tree.nodes() if n.parent is not None)
        assert svg.count("<line") == edges

    def test_slack_gradient_colors_edges(self):
        tree = make_zst_tree(sink_count=12)
        report = ClockNetworkEvaluator(EvaluatorConfig(engine="elmore")).evaluate(tree)
        annotation = annotate_tree_slacks(tree, report)
        svg = render_tree_svg(tree, annotation=annotation)
        assert "rgb(" in svg

    def test_obstacles_and_die_drawn(self, manual_tree):
        obstacles = ObstacleSet([Obstacle(Rect(100, 100, 200, 200))])
        svg = render_tree_svg(manual_tree, obstacles=obstacles, die=Rect(0, -300, 900, 300))
        assert "#dddddd" in svg

    def test_title_rendered(self, manual_tree):
        svg = render_tree_svg(manual_tree, title="hello tree")
        assert "hello tree" in svg

    def test_save_writes_file(self, manual_tree, tmp_path):
        target = save_tree_svg(manual_tree, tmp_path / "tree.svg")
        assert target.exists()
        assert target.read_text().startswith("<svg")
