"""Tests for the TI-style scalability benchmark generator."""

import pytest

from repro.workloads.ti import TI_SINK_COUNTS, TIBenchmarkSpec, generate_ti_benchmark


class TestTIGenerator:
    def test_table5_family_defined(self):
        assert TI_SINK_COUNTS == [200, 500, 1000, 2000, 5000, 10000, 20000, 50000]

    def test_requested_sink_count(self):
        instance = generate_ti_benchmark(200)
        assert instance.sink_count == 200
        instance.validate()

    def test_die_matches_published_chip(self):
        instance = generate_ti_benchmark(100)
        assert instance.die.width == pytest.approx(4200.0)
        assert instance.die.height == pytest.approx(3000.0)

    def test_deterministic_given_seed(self):
        a = generate_ti_benchmark(300, seed=5)
        b = generate_ti_benchmark(300, seed=5)
        assert [s.position for s in a.sinks] == [s.position for s in b.sinks]

    def test_different_seeds_differ(self):
        a = generate_ti_benchmark(300, seed=5)
        b = generate_ti_benchmark(300, seed=6)
        assert [s.position for s in a.sinks] != [s.position for s in b.sinks]

    def test_sinks_snapped_to_placement_rows(self):
        spec = TIBenchmarkSpec(sink_count=400, row_pitch=10.0)
        instance = generate_ti_benchmark(400, spec=spec)
        for sink in instance.sinks:
            offset = sink.position.y % 10.0
            assert min(offset, 10.0 - offset) < 1e-6 or sink.position.y in (0.0, 3000.0)

    def test_larger_families_scale(self):
        small = generate_ti_benchmark(200)
        large = generate_ti_benchmark(2000)
        assert large.sink_count == 10 * small.sink_count
        assert large.total_sink_capacitance() > small.total_sink_capacitance()

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            TIBenchmarkSpec(sink_count=0)
