"""Tests for the benchmark file format reader/writer."""

import pytest

from repro.workloads import generate_ispd09_benchmark, read_instance, write_instance


class TestRoundTrip:
    def test_roundtrip_preserves_instance(self, tmp_path):
        original = generate_ispd09_benchmark("ispd09f22", sink_scale=0.3)
        path = tmp_path / "f22.cns"
        write_instance(original, path)
        loaded = read_instance(path)

        assert loaded.name == original.name
        assert loaded.die == original.die
        assert loaded.source == original.source
        assert loaded.source_resistance == original.source_resistance
        assert loaded.slew_limit == original.slew_limit
        assert loaded.capacitance_limit == pytest.approx(original.capacitance_limit)
        assert loaded.sink_count == original.sink_count
        assert len(loaded.obstacles) == len(original.obstacles)
        assert [w.name for w in loaded.wire_library] == [w.name for w in original.wire_library]
        assert len(loaded.buffer_library) == len(original.buffer_library)

    def test_roundtrip_preserves_sink_data(self, tmp_path):
        original = generate_ispd09_benchmark("ispd09f11", sink_scale=0.2)
        path = tmp_path / "f11.cns"
        write_instance(original, path)
        loaded = read_instance(path)
        for a, b in zip(original.sinks, loaded.sinks):
            assert a.name == b.name
            assert a.position.is_close(b.position, tol=1e-6)
            assert a.capacitance == pytest.approx(b.capacitance)

    def test_loaded_instance_validates(self, tmp_path):
        original = generate_ispd09_benchmark("ispd09f32", sink_scale=0.2)
        path = tmp_path / "f32.cns"
        write_instance(original, path)
        read_instance(path).validate()


class TestErrorHandling:
    def test_unknown_keyword_rejected(self, tmp_path):
        path = tmp_path / "bad.cns"
        path.write_text("name x\ndie 0 0 10 10\nsource 5 0 50\nfrobnicate 1 2 3\n")
        with pytest.raises(ValueError, match="frobnicate"):
            read_instance(path)

    def test_malformed_line_reports_location(self, tmp_path):
        path = tmp_path / "bad.cns"
        path.write_text("name x\ndie 0 0 10\n")
        with pytest.raises(ValueError, match="bad.cns:2"):
            read_instance(path)

    def test_missing_die_rejected(self, tmp_path):
        path = tmp_path / "bad.cns"
        path.write_text("name x\nsource 5 0 50\nsink a 1 1 5 0\n")
        with pytest.raises(ValueError, match="die"):
            read_instance(path)

    def test_comments_and_blank_lines_ignored(self, tmp_path):
        original = generate_ispd09_benchmark("ispd09f22", sink_scale=0.2)
        path = tmp_path / "ok.cns"
        write_instance(original, path)
        content = "# leading comment\n\n" + path.read_text()
        path.write_text(content)
        assert read_instance(path).sink_count == original.sink_count
