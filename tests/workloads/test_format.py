"""Tests for the benchmark file format reader/writer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cts.bufferlib import BufferLibrary, BufferType
from repro.scenarios import generate_scenario
from repro.workloads import (
    generate_ispd09_benchmark,
    generate_ti_benchmark,
    instance_fingerprint,
    instance_lines,
    read_instance,
    write_instance,
)


class TestRoundTrip:
    def test_roundtrip_preserves_instance(self, tmp_path):
        original = generate_ispd09_benchmark("ispd09f22", sink_scale=0.3)
        path = tmp_path / "f22.cns"
        write_instance(original, path)
        loaded = read_instance(path)

        assert loaded.name == original.name
        assert loaded.die == original.die
        assert loaded.source == original.source
        assert loaded.source_resistance == original.source_resistance
        assert loaded.slew_limit == original.slew_limit
        assert loaded.capacitance_limit == pytest.approx(original.capacitance_limit)
        assert loaded.sink_count == original.sink_count
        assert len(loaded.obstacles) == len(original.obstacles)
        assert [w.name for w in loaded.wire_library] == [w.name for w in original.wire_library]
        assert len(loaded.buffer_library) == len(original.buffer_library)

    def test_roundtrip_preserves_sink_data(self, tmp_path):
        original = generate_ispd09_benchmark("ispd09f11", sink_scale=0.2)
        path = tmp_path / "f11.cns"
        write_instance(original, path)
        loaded = read_instance(path)
        for a, b in zip(original.sinks, loaded.sinks):
            assert a.name == b.name
            assert a.position.is_close(b.position, tol=1e-6)
            assert a.capacitance == pytest.approx(b.capacitance)

    def test_loaded_instance_validates(self, tmp_path):
        original = generate_ispd09_benchmark("ispd09f32", sink_scale=0.2)
        path = tmp_path / "f32.cns"
        write_instance(original, path)
        read_instance(path).validate()


def roundtrip(instance, tmp_path):
    path = tmp_path / "instance.cns"
    write_instance(instance, path)
    return read_instance(path)


class TestBitIdenticalRoundTrip:
    """write_instance -> read_instance must reproduce the canonical lines exactly."""

    @pytest.mark.parametrize(
        "make",
        [
            # cap_limit present, obstacles, macro sinks:
            lambda: generate_ispd09_benchmark("ispd09f22", sink_scale=0.2),
            # cap_limit None (the line is omitted and must read back as None):
            lambda: generate_ti_benchmark(40),
            # scenario families: blocked corridors / macro-edge pins included.
            lambda: generate_scenario("scenario:maze:sinks=12,walls=3"),
            lambda: generate_scenario("scenario:macros:sinks=12,macros=2"),
            lambda: generate_scenario("scenario:strip:sinks=12"),
            lambda: generate_scenario("scenario:banks:sinks=12,clusters=3"),
        ],
        ids=["ispd09", "ti-no-cap-limit", "maze", "macros", "strip", "banks"],
    )
    def test_instances_roundtrip_bit_identically(self, make, tmp_path):
        original = make()
        loaded = roundtrip(original, tmp_path)
        assert instance_lines(loaded) == instance_lines(original)
        assert instance_fingerprint(loaded) == instance_fingerprint(original)
        assert (loaded.capacitance_limit is None) == (original.capacitance_limit is None)

    def test_underscore_buffer_names_survive(self, tmp_path):
        # The historical space<->underscore escaping read INV_L back as
        # "INV L"; percent-encoding keeps underscores untouched and still
        # round-trips names containing real spaces.
        original = generate_ti_benchmark(10)
        loaded = roundtrip(original, tmp_path)
        assert [b.name for b in loaded.buffer_library] == ["INV_L", "INV_S"]

    def test_buffer_names_with_spaces_roundtrip(self, tmp_path):
        original = generate_ti_benchmark(10)
        original.buffer_library = BufferLibrary(
            [BufferType("2X INV_S", 8.4, 12.2, 220.0, intrinsic_delay=8.0,
                        inverting=True)]
        )
        loaded = roundtrip(original, tmp_path)
        assert [b.name for b in loaded.buffer_library] == ["2X INV_S"]
        assert instance_lines(loaded) == instance_lines(original)

    @settings(max_examples=12, deadline=None)
    @given(
        sinks=st.integers(min_value=4, max_value=24),
        clusters=st.integers(min_value=1, max_value=6),
        tightness=st.floats(min_value=0.005, max_value=0.25),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_roundtrip_property_over_banks_params(
        self, sinks, clusters, tightness, seed, tmp_path_factory
    ):
        spec = (
            f"scenario:banks:sinks={sinks},clusters={clusters},"
            f"tightness={tightness!r},seed={seed}"
        )
        original = generate_scenario(spec)
        tmp_path = tmp_path_factory.mktemp("roundtrip")
        loaded = roundtrip(original, tmp_path)
        assert instance_fingerprint(loaded) == instance_fingerprint(original)


class TestErrorHandling:
    def test_unknown_keyword_rejected(self, tmp_path):
        path = tmp_path / "bad.cns"
        path.write_text("name x\ndie 0 0 10 10\nsource 5 0 50\nfrobnicate 1 2 3\n")
        with pytest.raises(ValueError, match="frobnicate"):
            read_instance(path)

    def test_malformed_line_reports_location(self, tmp_path):
        path = tmp_path / "bad.cns"
        path.write_text("name x\ndie 0 0 10\n")
        with pytest.raises(ValueError, match="bad.cns:2"):
            read_instance(path)

    def test_missing_die_rejected(self, tmp_path):
        path = tmp_path / "bad.cns"
        path.write_text("name x\nsource 5 0 50\nsink a 1 1 5 0\n")
        with pytest.raises(ValueError, match="die"):
            read_instance(path)

    def test_comments_and_blank_lines_ignored(self, tmp_path):
        original = generate_ispd09_benchmark("ispd09f22", sink_scale=0.2)
        path = tmp_path / "ok.cns"
        write_instance(original, path)
        content = "# leading comment\n\n" + path.read_text()
        path.write_text(content)
        assert read_instance(path).sink_count == original.sink_count
