"""Golden pin of generated-instance fingerprints.

The benchmark generators and scenario families are the ground truth every
golden metric file and baseline store rests on: if an instance silently
changes, downstream numbers change for reasons that have nothing to do with
the synthesis code.  This test locks the canonical-serialization hash of
every workload generator and registered scenario family to
``tests/golden/instance_fingerprints.json``.

Blessed for the repro.seeding-based generators (SeedSequence-derived numpy
streams).  If a generator change is *intended*, regenerate the file::

    PYTHONPATH=src python -m tests.workloads.test_golden_fingerprints

and commit it together with the change (plus any re-blessed metric goldens).
"""

import json
from pathlib import Path

from repro.runner import JobSpec, resolve_instance
from repro.scenarios import scenario_names
from repro.workloads import ISPD09_BENCHMARKS, instance_fingerprint

GOLDEN_PATH = Path(__file__).parent.parent / "golden" / "instance_fingerprints.json"

#: Small, fast parameterizations; every registered scenario family must appear.
SCENARIO_SPECS = [
    "scenario:maze:sinks=16,walls=3",
    "scenario:macros:sinks=16,macros=3",
    "scenario:strip:sinks=16",
    "scenario:banks:sinks=16,clusters=4",
]

PINNED_SPECS = (
    [f"ispd09:{name}" for name in ISPD09_BENCHMARKS]
    + ["ti:200", "ti:1000", "ti:200:seed11"]
    + SCENARIO_SPECS
)


def compute_fingerprints():
    fingerprints = {}
    for spec in PINNED_SPECS:
        if spec == "ti:200:seed11":  # a non-default-seed TI variant
            instance = resolve_instance(JobSpec(instance="ti:200", seed=11))
        else:
            instance = resolve_instance(JobSpec(instance=spec))
        fingerprints[spec] = instance_fingerprint(instance)
    return fingerprints


def test_generated_instances_match_golden_fingerprints():
    golden = json.loads(GOLDEN_PATH.read_text())["fingerprints"]
    assert compute_fingerprints() == golden


def test_every_scenario_family_is_pinned():
    covered = {spec.split(":")[1] for spec in SCENARIO_SPECS}
    assert covered == set(scenario_names())


def test_golden_fingerprints_are_distinct():
    golden = json.loads(GOLDEN_PATH.read_text())["fingerprints"]
    values = list(golden.values())
    assert len(set(values)) == len(values)


if __name__ == "__main__":
    GOLDEN_PATH.write_text(
        json.dumps(
            {
                "description": "SHA-256 canonical-serialization fingerprints of "
                "generated instances (repro.workloads + repro.scenarios)",
                "fingerprints": compute_fingerprints(),
            },
            indent=1,
        )
        + "\n"
    )
    print(f"re-blessed {GOLDEN_PATH}")
