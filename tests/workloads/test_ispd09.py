"""Tests for the ISPD'09-style benchmark generator."""

import pytest

from repro.workloads.ispd09 import (
    ISPD09_BENCHMARKS,
    ISPD09BenchmarkSpec,
    generate_all_ispd09_benchmarks,
    generate_ispd09_benchmark,
)


class TestSuiteDefinition:
    def test_seven_benchmarks_defined(self):
        assert len(ISPD09_BENCHMARKS) == 7
        assert set(ISPD09_BENCHMARKS) == {
            "ispd09f11", "ispd09f12", "ispd09f21", "ispd09f22",
            "ispd09f31", "ispd09f32", "ispd09fnb1",
        }

    def test_published_scale_characteristics(self):
        largest = ISPD09_BENCHMARKS["ispd09f31"]
        assert largest.die_width == pytest.approx(17000.0)
        assert ISPD09_BENCHMARKS["ispd09fnb1"].sink_count == 330
        assert all(spec.sink_count <= 330 for spec in ISPD09_BENCHMARKS.values())

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            generate_ispd09_benchmark("ispd09f99")


class TestGeneration:
    def test_instance_matches_spec(self):
        instance = generate_ispd09_benchmark("ispd09f22")
        spec = ISPD09_BENCHMARKS["ispd09f22"]
        assert instance.sink_count == spec.sink_count
        assert instance.die.width == spec.die_width
        assert instance.capacitance_limit is not None
        instance.validate()

    def test_generation_is_deterministic(self):
        a = generate_ispd09_benchmark("ispd09f11")
        b = generate_ispd09_benchmark("ispd09f11")
        assert [s.position for s in a.sinks] == [s.position for s in b.sinks]
        assert [o.rect for o in a.obstacles] == [o.rect for o in b.obstacles]

    def test_different_benchmarks_differ(self):
        a = generate_ispd09_benchmark("ispd09f11")
        b = generate_ispd09_benchmark("ispd09f12")
        assert [s.position for s in a.sinks] != [s.position for s in b.sinks]

    def test_source_on_die_boundary(self):
        instance = generate_ispd09_benchmark("ispd09f21")
        assert instance.source.y == instance.die.ylo

    def test_regular_sinks_avoid_blockages(self):
        instance = generate_ispd09_benchmark("ispd09f22")
        for sink in instance.sinks:
            if sink.name.startswith("sink_"):
                assert not instance.obstacles.blocks_point(sink.position)

    def test_macro_sinks_sit_on_blockages(self):
        instance = generate_ispd09_benchmark("ispd09f22")
        macro_sinks = [s for s in instance.sinks if s.name.startswith("macro_sink")]
        assert macro_sinks
        for sink in macro_sinks:
            assert any(o.rect.contains_point(sink.position) for o in instance.obstacles)

    def test_sink_scale_reduces_size(self):
        full = generate_ispd09_benchmark("ispd09f31")
        scaled = generate_ispd09_benchmark("ispd09f31", sink_scale=0.25)
        assert scaled.sink_count == pytest.approx(full.sink_count * 0.25, abs=2)
        assert len(scaled.obstacles) <= len(full.obstacles)

    def test_invalid_sink_scale(self):
        with pytest.raises(ValueError):
            ISPD09_BENCHMARKS["ispd09f11"].scaled(0.0)

    def test_explicit_spec_accepted(self):
        spec = ISPD09BenchmarkSpec("custom", 5000.0, 5000.0, 40, 6, seed=1)
        instance = generate_ispd09_benchmark(spec)
        assert instance.name == "custom"
        assert instance.sink_count == 40

    def test_generate_all(self):
        instances = generate_all_ispd09_benchmarks(sink_scale=0.1)
        assert len(instances) == 7
        assert all(i.sink_count >= 4 for i in instances)
