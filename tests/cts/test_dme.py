"""Tests for zero-skew DME construction."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import ClockNetworkEvaluator, EvaluatorConfig
from repro.cts import ispd09_wire_library
from repro.cts.dme import ZeroSkewTreeBuilder, build_zero_skew_tree
from repro.cts.topology import SinkInstance
from repro.geometry import Point

WIRES = ispd09_wire_library()


def random_sinks(count, seed=11, span=4000.0):
    rng = random.Random(seed)
    return [
        SinkInstance(f"s{i}", Point(rng.uniform(0, span), rng.uniform(0, span)), rng.uniform(10, 50))
        for i in range(count)
    ]


def elmore_skew(tree):
    evaluator = ClockNetworkEvaluator(EvaluatorConfig(engine="elmore"))
    return evaluator.evaluate(tree).skew


class TestZeroSkewConstruction:
    def test_structure_is_valid(self):
        tree = build_zero_skew_tree(random_sinks(30), Point(0, 0), WIRES.widest)
        tree.validate()
        assert tree.sink_count() == 30

    def test_elmore_skew_is_negligible(self):
        tree = build_zero_skew_tree(random_sinks(40), Point(0, 0), WIRES.widest)
        assert elmore_skew(tree) < 0.05

    def test_all_sinks_present_with_positions(self):
        sinks = random_sinks(12)
        tree = build_zero_skew_tree(sinks, Point(0, 0), WIRES.widest)
        by_name = {n.sink.name: n for n in tree.sinks()}
        for sink in sinks:
            assert by_name[sink.name].position.is_close(sink.position)

    def test_snakes_are_non_negative(self):
        tree = build_zero_skew_tree(random_sinks(25), Point(0, 0), WIRES.widest)
        assert all(n.snake_length >= 0.0 for n in tree.nodes())

    def test_wirelength_at_least_spanning_lower_bound(self):
        sinks = random_sinks(20)
        tree = build_zero_skew_tree(sinks, Point(2000, 2000), WIRES.widest)
        # Any tree connecting the sinks is at least as long as the distance
        # from the source to the farthest sink.
        lower_bound = max(Point(2000, 2000).manhattan_to(s.position) for s in sinks)
        assert tree.total_wirelength() >= lower_bound

    def test_single_sink_tree(self):
        sinks = [SinkInstance("only", Point(500, 700), 25.0)]
        tree = build_zero_skew_tree(sinks, Point(0, 0), WIRES.widest)
        tree.validate()
        assert tree.sink_count() == 1
        assert tree.total_wirelength() >= 1200.0 - 1e-6

    def test_two_identical_positions(self):
        sinks = [
            SinkInstance("a", Point(100, 100), 10.0),
            SinkInstance("b", Point(100, 100), 30.0),
        ]
        tree = build_zero_skew_tree(sinks, Point(0, 0), WIRES.widest)
        tree.validate()
        assert elmore_skew(tree) < 0.05

    def test_asymmetric_loads_still_balanced(self):
        sinks = [
            SinkInstance("light", Point(1000, 0), 5.0),
            SinkInstance("heavy", Point(-1000, 0), 300.0),
        ]
        tree = build_zero_skew_tree(sinks, Point(0, 500), WIRES.widest)
        assert elmore_skew(tree) < 0.05

    def test_greedy_topology_also_zero_skew(self):
        tree = build_zero_skew_tree(
            random_sinks(18), Point(0, 0), WIRES.widest, topology_method="greedy"
        )
        assert elmore_skew(tree) < 0.05

    def test_source_resistance_is_recorded(self):
        tree = build_zero_skew_tree(random_sinks(5), Point(0, 0), WIRES.widest, source_resistance=123.0)
        assert tree.source_resistance == 123.0

    def test_builder_rejects_empty_sinks(self):
        with pytest.raises(ValueError):
            ZeroSkewTreeBuilder(WIRES.widest).build([], Point(0, 0))


@settings(max_examples=15, deadline=None)
@given(
    st.integers(min_value=2, max_value=40),
    st.integers(min_value=0, max_value=10_000),
)
def test_zero_skew_property_holds_for_random_instances(count, seed):
    """Property: the DME tree is Elmore-balanced for any sink set."""
    tree = build_zero_skew_tree(random_sinks(count, seed=seed), Point(0, 0), WIRES.widest)
    assert elmore_skew(tree) < 0.1
