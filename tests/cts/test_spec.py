"""Tests for the ClockNetworkInstance problem description."""

import pytest

from repro.cts.spec import ClockNetworkInstance
from repro.cts.topology import SinkInstance
from repro.geometry import Obstacle, ObstacleSet, Point, Rect


def valid_instance(**overrides):
    defaults = dict(
        name="t",
        die=Rect(0, 0, 1000, 1000),
        source=Point(500, 0),
        sinks=[SinkInstance("a", Point(100, 100), 10.0), SinkInstance("b", Point(900, 900), 10.0)],
        obstacles=ObstacleSet([Obstacle(Rect(400, 400, 600, 600))]),
        capacitance_limit=10000.0,
    )
    defaults.update(overrides)
    return ClockNetworkInstance(**defaults)


class TestValidation:
    def test_valid_instance_passes(self):
        valid_instance().validate()

    def test_no_sinks(self):
        with pytest.raises(ValueError):
            valid_instance(sinks=[]).validate()

    def test_duplicate_sink_names(self):
        sinks = [SinkInstance("a", Point(1, 1), 5.0), SinkInstance("a", Point(2, 2), 5.0)]
        with pytest.raises(ValueError):
            valid_instance(sinks=sinks).validate()

    def test_source_outside_die(self):
        with pytest.raises(ValueError):
            valid_instance(source=Point(-10, 0)).validate()

    def test_sink_outside_die(self):
        sinks = [SinkInstance("a", Point(5000, 100), 5.0)]
        with pytest.raises(ValueError):
            valid_instance(sinks=sinks).validate()

    def test_obstacle_outside_die(self):
        obstacles = ObstacleSet([Obstacle(Rect(900, 900, 1200, 1200))])
        with pytest.raises(ValueError):
            valid_instance(obstacles=obstacles).validate()

    def test_invalid_limits(self):
        with pytest.raises(ValueError):
            valid_instance(capacitance_limit=-1.0).validate()
        with pytest.raises(ValueError):
            valid_instance(slew_limit=0.0).validate()

    def test_helpers(self):
        instance = valid_instance()
        assert instance.sink_count == 2
        assert instance.total_sink_capacitance() == pytest.approx(20.0)
