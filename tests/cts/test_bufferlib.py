"""Tests for the buffer/inverter library (Table I primitives)."""

import pytest

from repro.cts.bufferlib import (
    BufferLibrary,
    BufferType,
    ISPD09_LARGE_INVERTER,
    ISPD09_SMALL_INVERTER,
    ispd09_buffer_library,
)


class TestBufferType:
    def test_table1_primitive_values(self):
        assert ISPD09_LARGE_INVERTER.input_cap == 35.0
        assert ISPD09_LARGE_INVERTER.output_cap == 80.0
        assert ISPD09_LARGE_INVERTER.output_res == 61.2
        assert ISPD09_SMALL_INVERTER.input_cap == 4.2
        assert ISPD09_SMALL_INVERTER.output_cap == 6.1
        assert ISPD09_SMALL_INVERTER.output_res == 440.0

    def test_parallel_composition_scales_parasitics(self):
        composite = ISPD09_SMALL_INVERTER.parallel(8)
        assert composite.input_cap == pytest.approx(33.6)
        assert composite.output_cap == pytest.approx(48.8)
        assert composite.output_res == pytest.approx(55.0)
        assert composite.parallel_count == 8
        assert composite.base_name == "INV_S"

    def test_parallel_one_returns_self(self):
        assert ISPD09_SMALL_INVERTER.parallel(1) is ISPD09_SMALL_INVERTER

    def test_parallel_composes_multiplicatively(self):
        assert ISPD09_SMALL_INVERTER.parallel(2).parallel(4).parallel_count == 8

    def test_parallel_invalid_count(self):
        with pytest.raises(ValueError):
            ISPD09_SMALL_INVERTER.parallel(0)

    def test_scaled(self):
        scaled = ISPD09_LARGE_INVERTER.scaled(1.25)
        assert scaled.input_cap == pytest.approx(35.0 * 1.25)
        assert scaled.output_res == pytest.approx(61.2 / 1.25)

    def test_scaled_invalid_factor(self):
        with pytest.raises(ValueError):
            ISPD09_LARGE_INVERTER.scaled(0.0)

    def test_eight_small_dominate_one_large(self):
        # The observation of Table I that motivates composite inverters.
        assert ISPD09_SMALL_INVERTER.parallel(8).dominates(ISPD09_LARGE_INVERTER)
        assert not ISPD09_SMALL_INVERTER.parallel(7).dominates(ISPD09_LARGE_INVERTER)

    def test_dominates_requires_strict_improvement(self):
        assert not ISPD09_LARGE_INVERTER.dominates(ISPD09_LARGE_INVERTER)

    def test_total_cap(self):
        assert ISPD09_LARGE_INVERTER.total_cap == pytest.approx(115.0)

    def test_invalid_parasitics(self):
        with pytest.raises(ValueError):
            BufferType("bad", -1.0, 1.0, 1.0)


class TestBufferLibrary:
    def test_ispd09_library_contents(self):
        lib = ispd09_buffer_library()
        assert len(lib) == 2
        assert lib.by_name("INV_L") == ISPD09_LARGE_INVERTER

    def test_smallest_and_strongest(self):
        lib = ispd09_buffer_library()
        assert lib.smallest == ISPD09_SMALL_INVERTER
        assert lib.strongest == ISPD09_LARGE_INVERTER

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            ispd09_buffer_library().by_name("INV_X")

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            BufferLibrary([ISPD09_LARGE_INVERTER, ISPD09_LARGE_INVERTER])

    def test_empty_library_rejected(self):
        with pytest.raises(ValueError):
            BufferLibrary([])
