"""Tests for the bounded-skew tree builder."""

import random

import pytest

from repro.analysis import ClockNetworkEvaluator, EvaluatorConfig
from repro.cts import ispd09_wire_library
from repro.cts.bst import BoundedSkewTreeBuilder, build_bounded_skew_tree
from repro.cts.dme import build_zero_skew_tree
from repro.cts.topology import SinkInstance
from repro.geometry import Point

WIRES = ispd09_wire_library()


def random_sinks(count, seed=5):
    rng = random.Random(seed)
    return [
        SinkInstance(f"s{i}", Point(rng.uniform(0, 4000), rng.uniform(0, 4000)), rng.uniform(10, 40))
        for i in range(count)
    ]


def elmore_skew(tree):
    return ClockNetworkEvaluator(EvaluatorConfig(engine="elmore")).evaluate(tree).skew


class TestBoundedSkew:
    def test_negative_bound_rejected(self):
        with pytest.raises(ValueError):
            BoundedSkewTreeBuilder(WIRES.widest, skew_bound=-1.0)

    def test_zero_bound_matches_zero_skew_tree(self):
        sinks = random_sinks(30)
        zst = build_zero_skew_tree(sinks, Point(0, 0), WIRES.widest)
        bst = build_bounded_skew_tree(sinks, Point(0, 0), WIRES.widest, skew_bound=0.0)
        assert bst.total_wirelength() == pytest.approx(zst.total_wirelength(), rel=1e-6)
        assert elmore_skew(bst) < 0.1

    @pytest.mark.parametrize("bound", [2.0, 10.0, 40.0])
    def test_skew_stays_within_bound(self, bound):
        sinks = random_sinks(35)
        tree = build_bounded_skew_tree(sinks, Point(0, 0), WIRES.widest, skew_bound=bound)
        tree.validate()
        assert elmore_skew(tree) <= bound + 0.5

    def test_wirelength_monotone_in_bound(self):
        sinks = random_sinks(35)
        lengths = []
        for bound in (0.0, 10.0, 50.0):
            tree = build_bounded_skew_tree(sinks, Point(0, 0), WIRES.widest, skew_bound=bound)
            lengths.append(tree.total_wirelength())
        assert lengths[0] >= lengths[1] >= lengths[2] - 1e-6

    def test_all_sinks_connected(self):
        sinks = random_sinks(20)
        tree = build_bounded_skew_tree(sinks, Point(0, 0), WIRES.widest, skew_bound=15.0)
        assert tree.sink_count() == 20
