"""Tests for obstacle-violation repair (Section IV-A)."""

import random

import pytest

from repro.cts import ClockTree, Sink, ispd09_buffer_library, ispd09_wire_library
from repro.cts.dme import build_zero_skew_tree
from repro.cts.obstacle_avoid import (
    ObstacleAvoider,
    _contour_parameter,
    _contour_point,
    _contour_walk,
    repair_obstacle_violations,
    slew_free_capacitance,
)
from repro.cts.topology import SinkInstance
from repro.geometry import Obstacle, ObstacleSet, Point, Rect

WIRES = ispd09_wire_library()
BUFS = ispd09_buffer_library()
DRIVER = BUFS.by_name("INV_S").parallel(8)


class TestSlewFreeCapacitance:
    def test_stronger_buffer_drives_more(self):
        small = slew_free_capacitance(BUFS.by_name("INV_S"), 100.0)
        strong = slew_free_capacitance(DRIVER, 100.0)
        assert strong == pytest.approx(8 * small)

    def test_scales_with_slew_limit(self):
        assert slew_free_capacitance(DRIVER, 200.0) == pytest.approx(
            2 * slew_free_capacitance(DRIVER, 100.0)
        )

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            slew_free_capacitance(DRIVER, 0.0)
        with pytest.raises(ValueError):
            slew_free_capacitance(DRIVER, 100.0, margin=0.0)


class TestContourParametrization:
    BOX = Rect(0.0, 0.0, 100.0, 50.0)

    @pytest.mark.parametrize(
        "point, expected",
        [
            (Point(0, 0), 0.0),
            (Point(60, 0), 60.0),
            (Point(100, 20), 120.0),
            (Point(40, 50), 100 + 50 + 60.0),
            (Point(0, 10), 100 + 50 + 100 + 40.0),
        ],
    )
    def test_parameter_values(self, point, expected):
        assert _contour_parameter(self.BOX, point) == pytest.approx(expected)

    def test_point_parameter_roundtrip(self):
        for param in (0.0, 30.0, 120.0, 200.0, 299.0):
            point = _contour_point(self.BOX, param)
            assert _contour_parameter(self.BOX, point) == pytest.approx(param % self.BOX.perimeter)

    def test_contour_walk_visits_corners(self):
        walk = _contour_walk(self.BOX, Point(60, 0), Point(100, 20), forward=True)
        assert walk[-1] == Point(100, 20)
        assert Point(100, 0) in walk

    def test_contour_walk_backward(self):
        walk = _contour_walk(self.BOX, Point(60, 0), Point(0, 10), forward=False)
        assert walk[-1] == Point(0, 10)
        assert Point(0, 0) in walk


class TestCrossingRepair:
    def test_crossing_edge_rerouted(self):
        obstacles = ObstacleSet([Obstacle(Rect(400, -200, 600, 200), name="blk")])
        tree = ClockTree(Point(0, 0), default_wire=WIRES.widest)
        tree.add_sink(tree.root_id, Point(1000, 0), Sink("s", 20.0))
        avoider = ObstacleAvoider(obstacles, driver=DRIVER)
        assert avoider.find_crossing_edges(tree)
        report = avoider.repair(tree)
        assert report.maze_reroutes + report.lshape_flips >= 1
        assert not avoider.find_crossing_edges(tree)

    def test_lshape_flip_preferred_when_it_clears(self):
        # The obstacle blocks only the horizontal-first bend.
        obstacles = ObstacleSet([Obstacle(Rect(400, -100, 600, 100), name="blk")])
        tree = ClockTree(Point(0, 0), default_wire=WIRES.widest)
        tree.add_sink(
            tree.root_id, Point(1000, 500), Sink("s", 20.0),
            route=[Point(0, 0), Point(1000, 0), Point(1000, 500)],
        )
        avoider = ObstacleAvoider(obstacles, driver=DRIVER)
        report = avoider.repair(tree)
        assert report.lshape_flips >= 1
        assert report.maze_reroutes == 0

    def test_wire_to_sink_inside_obstacle_is_tolerated(self):
        obstacles = ObstacleSet([Obstacle(Rect(400, -200, 800, 200), name="blk")])
        tree = ClockTree(Point(0, 0), default_wire=WIRES.widest)
        tree.add_sink(tree.root_id, Point(600, 0), Sink("macro_pin", 80.0))
        report = repair_obstacle_violations(tree, obstacles, driver=DRIVER)
        # The sink stays where it is; routing over the macro is legal.
        assert tree.sinks()[0].position == Point(600, 0)
        assert report.remaining_violations >= 0
        tree.validate()

    def test_no_obstacles_is_a_noop(self):
        tree = ClockTree(Point(0, 0), default_wire=WIRES.widest)
        tree.add_sink(tree.root_id, Point(100, 100), Sink("s", 5.0))
        report = repair_obstacle_violations(tree, ObstacleSet(), driver=DRIVER)
        assert report.edges_checked == 0


class TestMergeNodeLegalization:
    def test_internal_nodes_pushed_out_of_blockages(self):
        obstacles = ObstacleSet([Obstacle(Rect(400, -300, 900, 300), name="blk")])
        tree = ClockTree(Point(0, 0), default_wire=WIRES.widest)
        inner = tree.add_internal(tree.root_id, Point(650, 0))
        tree.add_sink(inner, Point(1200, 250), Sink("a", 20.0))
        tree.add_sink(inner, Point(1200, -250), Sink("b", 20.0))
        report = repair_obstacle_violations(tree, obstacles, driver=DRIVER)
        assert report.nodes_legalized == 1
        assert not obstacles.blocks_point(tree.node(inner).position)
        tree.validate()


class TestEnclosedSubtreeDetour:
    def _enclosed_case(self, sink_count=6, cap=120.0, spread=(1400.0, 3600.0, 1400.0, 3100.0)):
        """Several sinks inside one large blockage (spread controls how far apart)."""
        rng = random.Random(2)
        obstacles = ObstacleSet([Obstacle(Rect(1000, 1000, 4000, 3500), name="big")])
        xlo, xhi, ylo, yhi = spread
        sinks = [
            SinkInstance(
                f"in{i}",
                Point(rng.uniform(xlo, xhi), rng.uniform(ylo, yhi)),
                cap,
            )
            for i in range(sink_count)
        ] + [
            SinkInstance(f"out{i}", Point(rng.uniform(0, 900), rng.uniform(0, 900)), 20.0)
            for i in range(4)
        ]
        tree = build_zero_skew_tree(sinks, Point(0, 0), WIRES.widest)
        return obstacles, tree

    def test_large_enclosed_subtree_is_detoured(self):
        obstacles, tree = self._enclosed_case()
        sink_names_before = sorted(n.sink.name for n in tree.sinks())
        avoider = ObstacleAvoider(obstacles, driver=BUFS.by_name("INV_S").parallel(2), slew_limit=100.0)
        report = avoider.repair(tree)
        assert report.subtrees_captured >= 1
        assert report.subtrees_detoured >= 1
        # The detour must preserve every sink and keep the network a tree.
        tree.validate()
        assert sorted(n.sink.name for n in tree.sinks()) == sink_names_before
        # No internal node may remain strictly inside the blockage.
        for node in tree.nodes():
            if not node.is_sink and node.parent is not None:
                assert not obstacles.blocks_point(node.position)

    def test_small_enclosed_subtree_is_left_alone(self):
        # A tight, light cluster just inside the blockage boundary: one buffer
        # placed outside can drive it, so Step 2 decides against a detour.
        obstacles, tree = self._enclosed_case(
            sink_count=2, cap=10.0, spread=(1100.0, 1400.0, 1100.0, 1400.0)
        )
        wirelength_before = tree.total_wirelength()
        avoider = ObstacleAvoider(obstacles, driver=DRIVER, slew_limit=100.0)
        report = avoider.repair(tree)
        assert report.subtrees_detoured == 0
        # Only crossing-edge repair may have changed wirelength, not a contour detour.
        assert tree.total_wirelength() <= wirelength_before * 1.5
