"""Tests for the ClockTree data model."""

import pytest

from repro.cts import ClockTree, NodeKind, Sink, TreeValidationError, ispd09_buffer_library, ispd09_wire_library
from repro.geometry import Point

WIRES = ispd09_wire_library()
BUFS = ispd09_buffer_library()


def build_simple_tree():
    tree = ClockTree(Point(0, 0), source_resistance=50.0, default_wire=WIRES.widest)
    a = tree.add_internal(tree.root_id, Point(100, 0))
    s1 = tree.add_sink(a, Point(200, 50), Sink("s1", 10.0))
    s2 = tree.add_sink(a, Point(200, -50), Sink("s2", 20.0))
    return tree, a, s1, s2


class TestConstruction:
    def test_root_is_source(self):
        tree, *_ = build_simple_tree()
        assert tree.root.kind is NodeKind.SOURCE
        assert tree.root.parent is None

    def test_invalid_source_resistance(self):
        with pytest.raises(ValueError):
            ClockTree(Point(0, 0), source_resistance=0.0)

    def test_children_linked_both_ways(self):
        tree, a, s1, s2 = build_simple_tree()
        assert {c.node_id for c in tree.children_of(a)} == {s1, s2}
        assert tree.parent_of(s1).node_id == a

    def test_cannot_attach_to_sink(self):
        tree, a, s1, _ = build_simple_tree()
        with pytest.raises(ValueError):
            tree.add_internal(s1, Point(300, 0))

    def test_route_must_start_at_parent(self):
        tree, a, *_ = build_simple_tree()
        with pytest.raises(ValueError):
            tree.add_sink(a, Point(300, 0), Sink("bad", 5.0), route=[Point(50, 50), Point(300, 0)])

    def test_default_route_is_two_points(self):
        tree, a, s1, _ = build_simple_tree()
        assert tree.node(s1).route[0] == tree.node(a).position
        assert tree.node(s1).route[-1] == tree.node(s1).position

    def test_sink_requires_positive_cap(self):
        with pytest.raises(ValueError):
            Sink("s", 0.0)

    def test_sink_polarity_validation(self):
        with pytest.raises(ValueError):
            Sink("s", 1.0, required_polarity=2)


class TestTraversal:
    def test_preorder_parent_before_children(self):
        tree, a, s1, s2 = build_simple_tree()
        order = [n.node_id for n in tree.preorder()]
        assert order.index(tree.root_id) < order.index(a) < order.index(s1)

    def test_postorder_children_before_parent(self):
        tree, a, s1, s2 = build_simple_tree()
        order = [n.node_id for n in tree.postorder()]
        assert order.index(s1) < order.index(a)
        assert order.index(s2) < order.index(a)
        assert order[-1] == tree.root_id

    def test_path_to_root(self):
        tree, a, s1, _ = build_simple_tree()
        path = [n.node_id for n in tree.path_to_root(s1)]
        assert path == [s1, a, tree.root_id]

    def test_depth(self):
        tree, a, s1, _ = build_simple_tree()
        assert tree.depth_of(tree.root_id) == 0
        assert tree.depth_of(s1) == 2

    def test_subtree_sinks(self):
        tree, a, s1, s2 = build_simple_tree()
        assert {n.node_id for n in tree.subtree_sinks(a)} == {s1, s2}

    def test_downstream_sinks_map(self):
        tree, a, s1, s2 = build_simple_tree()
        mapping = tree.downstream_sinks_map()
        assert set(mapping[tree.root_id]) == {s1, s2}
        assert mapping[s1] == [s1]


class TestElectricalAggregates:
    def test_edge_length_and_capacitance(self):
        tree, a, s1, _ = build_simple_tree()
        node = tree.node(s1)
        assert node.edge_length() == pytest.approx(150.0)
        expected_cap = WIRES.widest.capacitance(150.0)
        assert tree.edge_capacitance(s1) == pytest.approx(expected_cap)

    def test_snake_adds_electrical_length(self):
        tree, a, s1, _ = build_simple_tree()
        before = tree.node(s1).edge_length()
        tree.add_snake(s1, 75.0)
        assert tree.node(s1).edge_length() == pytest.approx(before + 75.0)

    def test_negative_snake_rejected(self):
        tree, a, s1, _ = build_simple_tree()
        with pytest.raises(ValueError):
            tree.add_snake(s1, -1.0)

    def test_total_capacitance_components(self):
        tree, a, s1, s2 = build_simple_tree()
        tree.place_buffer(a, BUFS.by_name("INV_L"))
        total = tree.total_capacitance()
        assert total == pytest.approx(
            tree.total_wire_capacitance() + tree.total_buffer_capacitance() + tree.total_sink_capacitance()
        )
        assert tree.total_sink_capacitance() == pytest.approx(30.0)
        assert tree.total_buffer_capacitance() == pytest.approx(115.0)

    def test_counts(self):
        tree, a, s1, s2 = build_simple_tree()
        assert tree.sink_count() == 2
        assert tree.buffer_count() == 0
        tree.place_buffer(a, BUFS.by_name("INV_S"))
        assert tree.buffer_count() == 1

    def test_node_load_capacitance(self):
        tree, a, s1, _ = build_simple_tree()
        tree.place_buffer(a, BUFS.by_name("INV_L"))
        assert tree.node_load_capacitance(a) == pytest.approx(35.0)
        assert tree.node_load_capacitance(s1) == pytest.approx(10.0)

    def test_summary_keys(self):
        tree, *_ = build_simple_tree()
        summary = tree.summary()
        assert {"nodes", "sinks", "buffers", "wirelength_um", "total_capacitance_fF"} <= set(summary)


class TestPolarity:
    def test_no_buffers_means_positive_polarity(self):
        tree, a, s1, s2 = build_simple_tree()
        assert tree.sink_polarities() == {s1: 0, s2: 0}
        assert tree.wrong_polarity_sinks() == []

    def test_single_inverter_flips_downstream_sinks(self):
        tree, a, s1, s2 = build_simple_tree()
        tree.place_buffer(a, BUFS.by_name("INV_S"))
        assert tree.sink_polarities() == {s1: 1, s2: 1}
        assert {n.node_id for n in tree.wrong_polarity_sinks()} == {s1, s2}

    def test_two_inverters_restore_polarity(self):
        tree, a, s1, s2 = build_simple_tree()
        tree.place_buffer(tree.root_id, BUFS.by_name("INV_S"))
        tree.place_buffer(a, BUFS.by_name("INV_S"))
        assert tree.sink_polarities() == {s1: 0, s2: 0}

    def test_node_polarity_matches_sink_polarities(self):
        tree, a, s1, s2 = build_simple_tree()
        tree.place_buffer(a, BUFS.by_name("INV_S"))
        assert tree.node_polarity(s1) == tree.sink_polarities()[s1]


class TestMutation:
    def test_split_edge_preserves_structure_and_length(self):
        tree, a, s1, _ = build_simple_tree()
        tree.add_snake(s1, 50.0)
        original_length = tree.node(s1).edge_length()
        new_node = tree.split_edge(s1, 0.4)
        tree.validate()
        assert tree.parent_of(s1).node_id == new_node
        assert tree.parent_of(new_node).node_id == a
        combined = tree.node(new_node).edge_length() + tree.node(s1).edge_length()
        assert combined == pytest.approx(original_length)

    def test_split_edge_invalid_fraction(self):
        tree, a, s1, _ = build_simple_tree()
        with pytest.raises(ValueError):
            tree.split_edge(s1, 1.0)

    def test_split_root_edge_rejected(self):
        tree, *_ = build_simple_tree()
        with pytest.raises(ValueError):
            tree.split_edge(tree.root_id, 0.5)

    def test_set_wire_type(self):
        tree, a, s1, _ = build_simple_tree()
        tree.set_wire_type(s1, WIRES.narrowest)
        assert tree.node(s1).wire_type == WIRES.narrowest

    def test_clone_is_independent(self):
        tree, a, s1, _ = build_simple_tree()
        clone = tree.clone()
        clone.add_snake(s1, 100.0)
        assert tree.node(s1).snake_length == 0.0

    def test_copy_state_from_restores_snapshot(self):
        tree, a, s1, _ = build_simple_tree()
        snapshot = tree.clone()
        tree.add_snake(s1, 100.0)
        tree.place_buffer(a, BUFS.by_name("INV_L"))
        tree.copy_state_from(snapshot)
        assert tree.node(s1).snake_length == 0.0
        assert tree.node(a).buffer is None
        tree.validate()


class TestValidation:
    def test_valid_tree_passes(self):
        tree, *_ = build_simple_tree()
        tree.validate()

    def test_orphan_detection(self):
        tree, a, s1, _ = build_simple_tree()
        tree.node(a).children.remove(s1)
        with pytest.raises(TreeValidationError):
            tree.validate()

    def test_missing_wire_type_detected(self):
        tree, a, s1, _ = build_simple_tree()
        tree.node(s1).wire_type = None
        with pytest.raises(TreeValidationError):
            tree.validate()

    def test_negative_snake_detected(self):
        tree, a, s1, _ = build_simple_tree()
        tree.node(s1).snake_length = -5.0
        with pytest.raises(TreeValidationError):
            tree.validate()

    def test_sink_with_children_detected(self):
        tree, a, s1, _ = build_simple_tree()
        tree.node(s1).kind = NodeKind.INTERNAL
        extra = tree.add_internal(s1, Point(250, 50))
        tree.node(s1).kind = NodeKind.SINK
        with pytest.raises(TreeValidationError):
            tree.validate()


class TestChangeTracking:
    def test_new_nodes_get_revisions(self):
        tree, a, s1, s2 = build_simple_tree()
        revisions = [tree.node_revision(n) for n in (tree.root_id, a, s1, s2)]
        assert len(set(revisions)) == 4

    def test_mutators_bump_node_revision(self):
        tree, a, s1, _ = build_simple_tree()
        before = tree.node_revision(s1)
        tree.add_snake(s1, 10.0)
        mid = tree.node_revision(s1)
        tree.set_wire_type(s1, WIRES.narrowest)
        after = tree.node_revision(s1)
        assert before < mid < after

    def test_buffer_site_changes_bump_structure_revision(self):
        tree, a, s1, _ = build_simple_tree()
        r0 = tree.structure_revision
        tree.place_buffer(a, BUFS.by_name("INV_S"))
        r1 = tree.structure_revision
        assert r1 > r0
        # Replacing the buffer at the same site is not structural...
        tree.place_buffer(a, BUFS.by_name("INV_L"))
        assert tree.structure_revision == r1
        # ...but it bumps the node revision (content changed).
        tree.remove_buffer(a)
        assert tree.structure_revision > r1

    def test_split_edge_is_structural(self):
        tree, a, s1, _ = build_simple_tree()
        r0 = tree.structure_revision
        s1_rev = tree.node_revision(s1)
        tree.split_edge(s1, 0.5)
        assert tree.structure_revision > r0
        assert tree.node_revision(s1) > s1_rev

    def test_clone_shares_revisions_until_either_side_mutates(self):
        tree, a, s1, _ = build_simple_tree()
        clone = tree.clone()
        assert clone.structure_revision == tree.structure_revision
        assert clone.node_revision(s1) == tree.node_revision(s1)
        clone.add_snake(s1, 5.0)
        assert clone.node_revision(s1) != tree.node_revision(s1)

    def test_copy_state_from_restores_revisions(self):
        tree, a, s1, _ = build_simple_tree()
        snapshot = tree.clone()
        revision = tree.node_revision(s1)
        tree.add_snake(s1, 5.0)
        tree.copy_state_from(snapshot)
        assert tree.node_revision(s1) == revision

    def test_touch_is_monotonic_across_trees(self):
        first, _, s1, _ = build_simple_tree()
        second, _, t1, _ = build_simple_tree()
        first.touch(s1)
        second.touch(t1)
        assert first.node_revision(s1) != second.node_revision(t1)


class TestStructuralSurgery:
    def test_set_route_validates_endpoints(self):
        tree, a, s1, _ = build_simple_tree()
        node = tree.node(s1)
        parent = tree.node(a)
        bend = Point(parent.position.x, node.position.y)
        tree.set_route(s1, [parent.position, bend, node.position])
        tree.validate()
        with pytest.raises(ValueError):
            tree.set_route(s1, [Point(999, 999), node.position])

    def test_set_route_updates_edge_length(self):
        tree, a, s1, _ = build_simple_tree()
        node = tree.node(s1)
        parent = tree.node(a)
        straight = node.edge_length()
        detour = Point(parent.position.x, node.position.y + 300.0)
        tree.set_route(s1, [parent.position, detour, node.position])
        assert node.edge_length() > straight

    def test_move_node_reroutes_neighbours(self):
        tree, a, s1, s2 = build_simple_tree()
        tree.move_node(a, Point(120.0, 30.0))
        tree.validate()
        assert tree.node(a).position == Point(120.0, 30.0)
        assert tree.node(s1).route[0] == Point(120.0, 30.0)

    def test_move_root_rejected(self):
        tree, *_ = build_simple_tree()
        with pytest.raises(ValueError):
            tree.move_node(tree.root_id, Point(1, 1))

    def test_detach_and_attach_subtree(self):
        tree, a, s1, _ = build_simple_tree()
        tree.detach_subtree(s1)
        with pytest.raises(TreeValidationError):
            tree.validate()  # orphan while detached
        tree.attach_subtree(s1, tree.root_id, wire_type=WIRES.narrowest)
        tree.validate()
        assert tree.parent_of(s1).node_id == tree.root_id
        assert tree.node(s1).wire_type == WIRES.narrowest
        assert tree.node(s1).snake_length == 0.0

    def test_remove_subtree_deletes_nodes(self):
        tree, a, s1, s2 = build_simple_tree()
        count = len(tree)
        removed = tree.remove_subtree(a)
        assert set(removed) == {a, s1, s2}
        assert len(tree) == count - 3
        tree.validate()

    def test_remove_root_rejected(self):
        tree, *_ = build_simple_tree()
        with pytest.raises(ValueError):
            tree.remove_subtree(tree.root_id)

    def test_rejected_route_leaves_tree_untouched(self):
        tree, a, s1, _ = build_simple_tree()
        before_route = list(tree.node(s1).route)
        before_rev = tree.node_revision(s1)
        with pytest.raises(ValueError):
            tree.set_route(s1, [Point(999, 999), tree.node(s1).position])
        assert tree.node(s1).route == before_route
        assert tree.node_revision(s1) == before_rev

    def test_rejected_attach_leaves_node_detached(self):
        tree, a, s1, _ = build_simple_tree()
        tree.detach_subtree(s1)
        with pytest.raises(ValueError):
            tree.attach_subtree(s1, tree.root_id, route=[Point(999, 999), Point(5, 5)])
        assert tree.node(s1).parent is None
        assert s1 not in tree.root.children
        tree.attach_subtree(s1, tree.root_id)
        tree.validate()
