"""Tests for merge-topology generation."""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.cts.topology import (
    SinkInstance,
    build_topology,
    nearest_neighbor_topology,
    recursive_bisection_topology,
)
from repro.geometry import Point


def random_sinks(count, seed=3):
    rng = random.Random(seed)
    return [
        SinkInstance(f"s{i}", Point(rng.uniform(0, 1000), rng.uniform(0, 1000)), rng.uniform(5, 40))
        for i in range(count)
    ]


class TestSinkInstance:
    def test_positive_capacitance_required(self):
        with pytest.raises(ValueError):
            SinkInstance("s", Point(0, 0), 0.0)


class TestBisection:
    def test_leaves_cover_all_sinks(self):
        sinks = random_sinks(17)
        topo = recursive_bisection_topology(sinks)
        assert sorted(n.sink_index for n in topo.leaves()) == list(range(17))

    def test_binary_internal_nodes(self):
        topo = recursive_bisection_topology(random_sinks(16))
        for node in topo.nodes:
            if not node.is_leaf:
                assert len(node.children) == 2

    def test_balanced_depth_for_power_of_two(self):
        topo = recursive_bisection_topology(random_sinks(32))
        assert topo.depth() == 5

    def test_depth_close_to_log2_for_general_counts(self):
        count = 23
        topo = recursive_bisection_topology(random_sinks(count))
        assert topo.depth() <= math.ceil(math.log2(count)) + 1

    def test_single_sink(self):
        topo = recursive_bisection_topology(random_sinks(1))
        assert topo.root.is_leaf and topo.depth() == 0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            recursive_bisection_topology([])

    def test_node_count_is_2n_minus_1(self):
        topo = recursive_bisection_topology(random_sinks(21))
        assert len(topo.nodes) == 2 * 21 - 1


class TestGreedy:
    def test_leaves_cover_all_sinks(self):
        topo = nearest_neighbor_topology(random_sinks(13))
        assert sorted(n.sink_index for n in topo.leaves()) == list(range(13))

    def test_greedy_pairs_nearby_sinks_first(self):
        # Two tight clusters far apart: the root split must separate the clusters.
        sinks = [
            SinkInstance("a0", Point(0, 0), 10),
            SinkInstance("a1", Point(1, 0), 10),
            SinkInstance("b0", Point(1000, 0), 10),
            SinkInstance("b1", Point(1001, 0), 10),
        ]
        topo = nearest_neighbor_topology(sinks)
        root = topo.root
        left_sinks = {n.sink_index for n in topo.nodes if n.is_leaf and _is_descendant(topo, n.index, root.left)}
        assert left_sinks in ({0, 1}, {2, 3})

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            nearest_neighbor_topology([])


class TestDispatch:
    def test_build_topology_methods(self):
        sinks = random_sinks(9)
        assert build_topology(sinks, "bisection").depth() >= 1
        assert build_topology(sinks, "greedy").depth() >= 1

    def test_unknown_method_raises(self):
        with pytest.raises(ValueError):
            build_topology(random_sinks(4), "magic")

    def test_validate_detects_missing_sink(self):
        topo = recursive_bisection_topology(random_sinks(5))
        with pytest.raises(ValueError):
            topo.validate(6)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=1, max_value=60), st.integers(min_value=0, max_value=1000))
def test_bisection_always_covers_every_sink(count, seed):
    sinks = random_sinks(count, seed=seed)
    topo = recursive_bisection_topology(sinks)
    topo.validate(count)
    assert len(topo.leaves()) == count


def _is_descendant(topo, node_index, ancestor_index):
    stack = [ancestor_index]
    while stack:
        current = stack.pop()
        if current == node_index:
            return True
        stack.extend(topo.node(current).children)
    return False
