"""Tests for the wire library."""

import pytest

from repro.cts.wirelib import WireLibrary, WireType, ispd09_wire_library


class TestWireType:
    def test_resistance_and_capacitance_scale_with_length(self):
        wire = WireType("w", 0.1, 0.2)
        assert wire.resistance(100.0) == pytest.approx(10.0)
        assert wire.capacitance(100.0) == pytest.approx(20.0)

    def test_invalid_parasitics_raise(self):
        with pytest.raises(ValueError):
            WireType("w", 0.0, 0.2)
        with pytest.raises(ValueError):
            WireType("w", 0.1, -1.0)


class TestWireLibrary:
    def test_ordering_narrowest_to_widest(self):
        lib = ispd09_wire_library()
        assert lib.narrowest.unit_resistance > lib.widest.unit_resistance

    def test_default_is_widest(self):
        lib = ispd09_wire_library()
        assert lib.default == lib.widest

    def test_by_name_and_missing(self):
        lib = ispd09_wire_library()
        assert lib.by_name("W_WIDE") == lib.widest
        with pytest.raises(KeyError):
            lib.by_name("missing")

    def test_narrower_and_wider_walk_the_ladder(self):
        lib = ispd09_wire_library()
        assert lib.narrower(lib.widest) == lib.narrowest
        assert lib.wider(lib.narrowest) == lib.widest

    def test_endpoints_saturate(self):
        lib = ispd09_wire_library()
        assert lib.narrower(lib.narrowest) == lib.narrowest
        assert lib.wider(lib.widest) == lib.widest

    def test_can_downsize_and_upsize(self):
        lib = ispd09_wire_library()
        assert lib.can_downsize(lib.widest)
        assert not lib.can_downsize(lib.narrowest)
        assert lib.can_upsize(lib.narrowest)
        assert not lib.can_upsize(lib.widest)

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            WireLibrary([WireType("w", 0.1, 0.2), WireType("w", 0.2, 0.1)])

    def test_empty_library_rejected(self):
        with pytest.raises(ValueError):
            WireLibrary([])

    def test_membership(self):
        lib = ispd09_wire_library()
        assert lib.widest in lib
        assert len(lib) == 2
