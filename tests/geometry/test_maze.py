"""Tests for the obstacle-avoiding maze router."""

import pytest

from repro.geometry.maze import MazeRouteError, MazeRouter
from repro.geometry.obstacles import Obstacle, ObstacleSet
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.geometry.segment import Segment


def _router(*rects, die=None):
    return MazeRouter(ObstacleSet([Obstacle(r) for r in rects]), die=die)


def _route_is_clear(points, obstacles):
    for a, b in zip(points, points[1:]):
        if obstacles.crossing_obstacles(Segment(a, b)):
            return False
    return True


class TestMazeRouter:
    def test_direct_route_when_clear(self):
        router = _router(Rect(100, 100, 200, 200))
        assert router.route(Point(0, 0), Point(50, 0)) == [Point(0, 0), Point(50, 0)]

    def test_detour_around_obstacle(self):
        obstacles = ObstacleSet([Obstacle(Rect(40, -50, 60, 50))])
        router = MazeRouter(obstacles)
        route = router.route(Point(0, 0), Point(100, 0))
        assert route[0] == Point(0, 0) and route[-1] == Point(100, 0)
        assert _route_is_clear(route, obstacles)

    def test_detour_length_exceeds_manhattan(self):
        router = _router(Rect(40, -50, 60, 50))
        length = router.route_length(Point(0, 0), Point(100, 0))
        assert length > 100.0

    def test_route_length_at_least_manhattan(self):
        router = _router(Rect(30, 30, 70, 70))
        start, end = Point(0, 0), Point(100, 100)
        assert router.route_length(start, end) >= start.manhattan_to(end) - 1e-9

    def test_route_is_rectilinear(self):
        router = _router(Rect(40, -50, 60, 50))
        route = router.route(Point(0, 0), Point(100, 0))
        for a, b in zip(route, route[1:]):
            assert a.x == b.x or a.y == b.y

    def test_route_respects_die_boundary(self):
        die = Rect(-10, -100, 110, 100)
        obstacles = ObstacleSet([Obstacle(Rect(40, -100, 60, 90))])
        router = MazeRouter(obstacles, die=die)
        route = router.route(Point(0, 0), Point(100, 0))
        assert all(die.contains_point(p) for p in route)
        assert _route_is_clear(route, obstacles)

    def test_unreachable_endpoint_raises(self):
        # The target is strictly inside a blockage, so every final segment
        # would cross the obstacle interior.
        router = _router(Rect(40, 40, 60, 60))
        with pytest.raises(MazeRouteError):
            router.route(Point(0, 0), Point(50, 50))

    def test_collinear_points_are_simplified(self):
        router = _router(Rect(200, 200, 300, 300))
        route = router.route(Point(0, 0), Point(100, 0))
        assert len(route) == 2
