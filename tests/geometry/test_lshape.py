"""Tests for one-bend route enumeration and obstacle-aware selection."""

import pytest

from repro.geometry.lshape import best_lshape, lshape_obstacle_overlap, lshape_routes
from repro.geometry.obstacles import Obstacle, ObstacleSet
from repro.geometry.point import Point
from repro.geometry.rect import Rect


class TestLShapeRoutes:
    def test_two_routes_for_general_points(self):
        routes = lshape_routes(Point(0, 0), Point(10, 5))
        assert len(routes) == 2
        assert {r.bend for r in routes} == {Point(10, 0), Point(0, 5)}

    def test_single_route_for_aligned_points(self):
        assert len(lshape_routes(Point(0, 0), Point(10, 0))) == 1

    def test_routes_have_equal_length(self):
        a, b = lshape_routes(Point(0, 0), Point(10, 5))
        assert a.length == b.length == 15.0


class TestBestLShape:
    def test_avoids_obstacle_when_possible(self):
        # An obstacle blocking the horizontal-first bend leg.
        obstacles = ObstacleSet([Obstacle(Rect(4, -1, 6, 2))])
        chosen = best_lshape(Point(0, 0), Point(10, 5), obstacles)
        assert chosen.overlap_length_with(Rect(4, -1, 6, 2)) == 0.0

    def test_defaults_to_horizontal_first_without_obstacles(self):
        chosen = best_lshape(Point(0, 0), Point(10, 5))
        assert chosen.bend == Point(10, 0)

    def test_overlap_helper_sums_over_rects(self):
        route = lshape_routes(Point(0, 0), Point(10, 0))[0]
        rects = [Rect(2, -1, 4, 1), Rect(6, -1, 7, 1)]
        assert lshape_obstacle_overlap(route, rects) == pytest.approx(3.0)
