"""Tests for Manhattan arcs, TRRs and DME merging segments."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.geometry.point import Point
from repro.geometry.trr import TRR, ManhattanArc, merging_segment

coords = st.floats(min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False)
points = st.builds(Point, coords, coords)


class TestManhattanArc:
    def test_from_point_is_degenerate(self):
        arc = ManhattanArc.from_point(Point(3, 4))
        assert arc.is_point and arc.length == 0.0

    def test_from_endpoints_on_diagonal(self):
        arc = ManhattanArc.from_endpoints(Point(0, 0), Point(2, 2))
        assert arc.length == pytest.approx(4.0)  # u spans 0..4

    def test_from_endpoints_off_diagonal_raises(self):
        with pytest.raises(ValueError):
            ManhattanArc.from_endpoints(Point(0, 0), Point(3, 1))

    def test_invalid_extents_raise(self):
        with pytest.raises(ValueError):
            ManhattanArc(1.0, 0.0, 0.0, 0.0)

    def test_two_dimensional_arc_raises(self):
        with pytest.raises(ValueError):
            ManhattanArc(0.0, 1.0, 0.0, 1.0)

    def test_distance_to_point_matches_manhattan_for_point_arc(self):
        arc = ManhattanArc.from_point(Point(1, 1))
        assert arc.distance_to_point(Point(4, 5)) == pytest.approx(7.0)

    def test_closest_point_lies_on_arc(self):
        arc = ManhattanArc.from_endpoints(Point(0, 0), Point(4, 4))
        closest = arc.closest_point_to(Point(10, 0))
        assert arc.distance_to_point(closest) <= 1e-9

    def test_distance_to_arc_zero_when_touching(self):
        a = ManhattanArc.from_point(Point(0, 0))
        b = ManhattanArc.from_endpoints(Point(0, 0), Point(3, 3))
        assert a.distance_to_arc(b) == 0.0

    @given(points, points)
    def test_point_arc_distance_equals_manhattan(self, p, q):
        arc = ManhattanArc.from_point(p)
        assert math.isclose(arc.distance_to_point(q), p.manhattan_to(q), rel_tol=1e-9, abs_tol=1e-6)


class TestTRR:
    def test_negative_radius_raises(self):
        with pytest.raises(ValueError):
            TRR(ManhattanArc.from_point(Point(0, 0)), -1.0)

    def test_contains_points_within_radius(self):
        region = TRR(ManhattanArc.from_point(Point(0, 0)), 5.0)
        assert region.contains_point(Point(2, 3))
        assert region.contains_point(Point(5, 0))
        assert not region.contains_point(Point(4, 3))

    def test_intersect_disjoint_returns_none(self):
        a = TRR(ManhattanArc.from_point(Point(0, 0)), 1.0)
        b = TRR(ManhattanArc.from_point(Point(10, 0)), 1.0)
        assert a.intersect(b) is None

    def test_intersect_tangent_returns_point(self):
        a = TRR(ManhattanArc.from_point(Point(0, 0)), 5.0)
        b = TRR(ManhattanArc.from_point(Point(10, 0)), 5.0)
        arc = a.intersect(b)
        assert arc is not None and arc.is_point
        assert arc.any_point().is_close(Point(5, 0))


class TestMergingSegment:
    def test_radii_too_small_raise(self):
        a = ManhattanArc.from_point(Point(0, 0))
        b = ManhattanArc.from_point(Point(10, 0))
        with pytest.raises(ValueError):
            merging_segment(a, b, 3.0, 3.0)

    def test_exact_split_points_lie_between(self):
        a = ManhattanArc.from_point(Point(0, 0))
        b = ManhattanArc.from_point(Point(10, 0))
        arc = merging_segment(a, b, 4.0, 6.0)
        point = arc.any_point()
        assert a.distance_to_point(point) == pytest.approx(4.0, abs=1e-6)
        assert b.distance_to_point(point) == pytest.approx(6.0, abs=1e-6)

    def test_detour_radius_keeps_segment_on_near_arc(self):
        a = ManhattanArc.from_point(Point(0, 0))
        b = ManhattanArc.from_point(Point(10, 0))
        arc = merging_segment(a, b, 0.0, 14.0)
        assert a.distance_to_point(arc.any_point()) <= 1e-9

    @given(points, points, st.floats(min_value=0.0, max_value=1.0))
    def test_split_property(self, p, q, fraction):
        a = ManhattanArc.from_point(p)
        b = ManhattanArc.from_point(q)
        dist = p.manhattan_to(q)
        ra = dist * fraction
        rb = dist - ra
        arc = merging_segment(a, b, ra, rb)
        sample = arc.any_point()
        assert a.distance_to_point(sample) <= ra + 1e-6
        assert b.distance_to_point(sample) <= rb + 1e-6
