"""Tests for axis-aligned rectangles."""

import pytest

from repro.geometry.point import Point
from repro.geometry.rect import Rect


class TestConstruction:
    def test_degenerate_raises(self):
        with pytest.raises(ValueError):
            Rect(5, 0, 1, 2)

    def test_from_corners_normalizes(self):
        rect = Rect.from_corners(Point(5, 1), Point(2, 7))
        assert (rect.xlo, rect.ylo, rect.xhi, rect.yhi) == (2, 1, 5, 7)

    def test_from_center(self):
        rect = Rect.from_center(Point(10, 10), 4, 6)
        assert (rect.xlo, rect.ylo, rect.xhi, rect.yhi) == (8, 7, 12, 13)

    def test_zero_area_rect_is_allowed(self):
        rect = Rect(1, 1, 1, 5)
        assert rect.area == 0.0


class TestMeasures:
    def test_width_height_area(self):
        rect = Rect(0, 0, 4, 3)
        assert rect.width == 4 and rect.height == 3 and rect.area == 12

    def test_center(self):
        assert Rect(0, 0, 4, 2).center == Point(2, 1)

    def test_perimeter(self):
        assert Rect(0, 0, 4, 2).perimeter == 12

    def test_corners_order(self):
        corners = Rect(0, 0, 2, 1).corners()
        assert corners == [Point(0, 0), Point(2, 0), Point(2, 1), Point(0, 1)]


class TestContainment:
    def test_contains_interior_point(self):
        assert Rect(0, 0, 4, 4).contains_point(Point(2, 2))

    def test_boundary_point_non_strict(self):
        assert Rect(0, 0, 4, 4).contains_point(Point(0, 2))

    def test_boundary_point_strict(self):
        assert not Rect(0, 0, 4, 4).contains_point(Point(0, 2), strict=True)

    def test_contains_rect(self):
        assert Rect(0, 0, 10, 10).contains_rect(Rect(2, 2, 5, 5))
        assert not Rect(0, 0, 10, 10).contains_rect(Rect(2, 2, 15, 5))


class TestIntersection:
    def test_overlapping(self):
        assert Rect(0, 0, 4, 4).intersects(Rect(2, 2, 6, 6))

    def test_touching_not_strict_intersection(self):
        a, b = Rect(0, 0, 4, 4), Rect(4, 0, 8, 4)
        assert not a.intersects(b, strict=True)
        assert a.intersects(b, strict=False)

    def test_disjoint(self):
        assert not Rect(0, 0, 1, 1).intersects(Rect(5, 5, 6, 6), strict=False)

    def test_intersection_rect(self):
        overlap = Rect(0, 0, 4, 4).intersection(Rect(2, 1, 6, 3))
        assert overlap == Rect(2, 1, 4, 3)

    def test_intersection_none_when_disjoint(self):
        assert Rect(0, 0, 1, 1).intersection(Rect(3, 3, 4, 4)) is None

    def test_union_bbox(self):
        assert Rect(0, 0, 1, 1).union_bbox(Rect(3, 2, 4, 5)) == Rect(0, 0, 4, 5)


class TestGeometryHelpers:
    def test_expanded(self):
        assert Rect(1, 1, 3, 3).expanded(1) == Rect(0, 0, 4, 4)

    def test_clamp_point_inside_unchanged(self):
        assert Rect(0, 0, 4, 4).clamp_point(Point(1, 2)) == Point(1, 2)

    def test_clamp_point_outside(self):
        assert Rect(0, 0, 4, 4).clamp_point(Point(9, -3)) == Point(4, 0)

    def test_distance_to_point_inside_is_zero(self):
        assert Rect(0, 0, 4, 4).distance_to_point(Point(2, 2)) == 0.0

    def test_distance_to_point_outside(self):
        assert Rect(0, 0, 4, 4).distance_to_point(Point(6, 7)) == 5.0
