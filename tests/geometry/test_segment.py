"""Tests for rectilinear segments and L-shapes."""

import pytest

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.geometry.segment import LShape, Segment


class TestSegment:
    def test_length_is_manhattan(self):
        assert Segment(Point(0, 0), Point(3, 4)).length == 7.0

    def test_orientation_flags(self):
        assert Segment(Point(0, 0), Point(5, 0)).is_horizontal
        assert Segment(Point(1, 1), Point(1, 9)).is_vertical
        assert Segment(Point(0, 0), Point(2, 3)).is_rectilinear is False

    def test_degenerate(self):
        assert Segment(Point(1, 1), Point(1, 1)).is_degenerate

    def test_reversed(self):
        seg = Segment(Point(0, 0), Point(1, 0))
        assert seg.reversed() == Segment(Point(1, 0), Point(0, 0))

    def test_point_at_endpoints(self):
        seg = Segment(Point(0, 0), Point(10, 0))
        assert seg.point_at(0.0) == Point(0, 0)
        assert seg.point_at(1.0) == Point(10, 0)
        assert seg.point_at(0.25) == Point(2.5, 0)

    def test_point_at_out_of_range(self):
        with pytest.raises(ValueError):
            Segment(Point(0, 0), Point(1, 0)).point_at(1.5)

    def test_split_at(self):
        first, second = Segment(Point(0, 0), Point(10, 0)).split_at(0.3)
        assert first.b == Point(3, 0) and second.a == Point(3, 0)

    def test_intersects_rect_crossing(self):
        seg = Segment(Point(-5, 5), Point(15, 5))
        assert seg.intersects_rect(Rect(0, 0, 10, 10))

    def test_intersects_rect_touching_boundary_not_strict_crossing(self):
        seg = Segment(Point(-5, 0), Point(15, 0))
        assert not seg.intersects_rect(Rect(0, 0, 10, 10), strict=True)
        assert seg.intersects_rect(Rect(0, 0, 10, 10), strict=False)

    def test_intersects_rect_outside(self):
        assert not Segment(Point(-5, 20), Point(15, 20)).intersects_rect(Rect(0, 0, 10, 10))


class TestLShape:
    def test_legs_must_be_rectilinear(self):
        with pytest.raises(ValueError):
            LShape(Point(0, 0), Point(3, 4), Point(3, 8))

    def test_length(self):
        route = LShape(Point(0, 0), Point(4, 0), Point(4, 3))
        assert route.length == 7.0

    def test_segments_skip_degenerate_legs(self):
        straight = LShape(Point(0, 0), Point(0, 0), Point(0, 5))
        assert len(straight.segments) == 1

    def test_overlap_length_with_rect(self):
        route = LShape(Point(0, 5), Point(10, 5), Point(10, 12))
        rect = Rect(2, 0, 6, 10)
        assert route.overlap_length_with(rect) == pytest.approx(4.0)

    def test_overlap_zero_outside(self):
        route = LShape(Point(0, 0), Point(10, 0), Point(10, 2))
        assert route.overlap_length_with(Rect(20, 20, 30, 30)) == 0.0
