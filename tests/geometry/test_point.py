"""Tests for planar points and Manhattan-metric helpers."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.geometry.point import Point, bounding_box_of_points, manhattan_distance

coords = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)
points = st.builds(Point, coords, coords)


class TestPointBasics:
    def test_manhattan_distance(self):
        assert Point(0, 0).manhattan_to(Point(3, 4)) == 7.0

    def test_manhattan_distance_function(self):
        assert manhattan_distance(Point(1, 1), Point(-2, 5)) == 7.0

    def test_euclidean_distance(self):
        assert Point(0, 0).euclidean_to(Point(3, 4)) == pytest.approx(5.0)

    def test_translated(self):
        assert Point(1, 2).translated(3, -1) == Point(4, 1)

    def test_midpoint(self):
        assert Point(0, 0).midpoint(Point(4, 6)) == Point(2, 3)

    def test_as_tuple(self):
        assert Point(1.5, -2.0).as_tuple() == (1.5, -2.0)

    def test_iteration_unpacks(self):
        x, y = Point(7, 8)
        assert (x, y) == (7, 8)

    def test_is_close_true(self):
        assert Point(1.0, 1.0).is_close(Point(1.0 + 1e-12, 1.0))

    def test_is_close_false(self):
        assert not Point(1.0, 1.0).is_close(Point(1.1, 1.0))

    def test_ordering_is_lexicographic(self):
        assert Point(1, 5) < Point(2, 0)
        assert Point(1, 2) < Point(1, 3)

    def test_points_are_hashable(self):
        assert len({Point(1, 2), Point(1, 2), Point(2, 1)}) == 2


class TestRotatedCoordinates:
    def test_u_and_v(self):
        p = Point(3, 1)
        assert p.u == 4 and p.v == 2

    def test_from_uv_roundtrip(self):
        p = Point(2.5, -1.5)
        assert Point.from_uv(p.u, p.v).is_close(p)

    @given(points)
    def test_uv_roundtrip_property(self, p):
        back = Point.from_uv(p.u, p.v)
        assert math.isclose(back.x, p.x, abs_tol=1e-6)
        assert math.isclose(back.y, p.y, abs_tol=1e-6)

    @given(points, points)
    def test_manhattan_equals_chebyshev_in_rotated_frame(self, a, b):
        manhattan = a.manhattan_to(b)
        chebyshev = max(abs(a.u - b.u), abs(a.v - b.v))
        assert math.isclose(manhattan, chebyshev, rel_tol=1e-9, abs_tol=1e-6)


class TestManhattanMetricProperties:
    @given(points, points)
    def test_symmetry(self, a, b):
        assert a.manhattan_to(b) == b.manhattan_to(a)

    @given(points, points, points)
    def test_triangle_inequality(self, a, b, c):
        assert a.manhattan_to(c) <= a.manhattan_to(b) + b.manhattan_to(c) + 1e-6

    @given(points)
    def test_identity(self, a):
        assert a.manhattan_to(a) == 0.0


class TestBoundingBox:
    def test_bounding_box(self):
        box = bounding_box_of_points([Point(1, 5), Point(-2, 3), Point(4, 0)])
        assert box == (-2, 0, 4, 5)

    def test_bounding_box_single_point(self):
        assert bounding_box_of_points([Point(2, 2)]) == (2, 2, 2, 2)

    def test_bounding_box_empty_raises(self):
        with pytest.raises(ValueError):
            bounding_box_of_points([])
