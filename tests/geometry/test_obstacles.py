"""Tests for obstacles, compound-obstacle merging and legality queries."""

import pytest

from repro.geometry.obstacles import Obstacle, ObstacleSet
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.geometry.segment import Segment


def _set(*rects):
    return ObstacleSet([Obstacle(r, name=f"o{i}") for i, r in enumerate(rects)])


class TestCompoundObstacles:
    def test_disjoint_obstacles_stay_separate(self):
        obstacles = _set(Rect(0, 0, 10, 10), Rect(50, 50, 60, 60))
        assert len(obstacles.compound_obstacles()) == 2

    def test_abutting_obstacles_merge(self):
        obstacles = _set(Rect(0, 0, 10, 10), Rect(10, 0, 20, 10))
        compounds = obstacles.compound_obstacles()
        assert len(compounds) == 1
        assert compounds[0].bbox == Rect(0, 0, 20, 10)

    def test_chain_of_three_merges_transitively(self):
        obstacles = _set(Rect(0, 0, 10, 10), Rect(10, 0, 20, 10), Rect(20, 0, 30, 10))
        assert len(obstacles.compound_obstacles()) == 1

    def test_add_invalidates_cached_compounds(self):
        obstacles = _set(Rect(0, 0, 10, 10))
        assert len(obstacles.compound_obstacles()) == 1
        obstacles.add(Obstacle(Rect(10, 0, 20, 10), name="new"))
        assert len(obstacles.compound_obstacles()) == 1
        assert obstacles.compound_obstacles()[0].bbox.xhi == 20


class TestQueries:
    def test_blocks_interior_point_only(self):
        obstacles = _set(Rect(0, 0, 10, 10))
        assert obstacles.blocks_point(Point(5, 5))
        assert not obstacles.blocks_point(Point(0, 5))  # boundary is legal
        assert not obstacles.blocks_point(Point(15, 5))

    def test_crossing_obstacles(self):
        obstacles = _set(Rect(0, 0, 10, 10), Rect(20, 0, 30, 10))
        crossing = obstacles.crossing_obstacles(Segment(Point(-5, 5), Point(15, 5)))
        assert len(crossing) == 1

    def test_is_route_clear(self):
        obstacles = _set(Rect(0, 0, 10, 10))
        assert obstacles.is_route_clear([Point(-5, 15), Point(15, 15)])
        assert not obstacles.is_route_clear([Point(-5, 5), Point(15, 5)])

    def test_legal_buffer_location_with_die(self):
        obstacles = _set(Rect(0, 0, 10, 10))
        die = Rect(0, 0, 100, 100)
        assert obstacles.legal_buffer_location(Point(50, 50), die)
        assert not obstacles.legal_buffer_location(Point(5, 5), die)
        assert not obstacles.legal_buffer_location(Point(150, 50), die)

    def test_nearest_legal_point_already_legal(self):
        obstacles = _set(Rect(0, 0, 10, 10))
        assert obstacles.nearest_legal_point(Point(50, 50)) == Point(50, 50)

    def test_nearest_legal_point_escapes_obstacle(self):
        obstacles = _set(Rect(0, 0, 10, 10))
        escaped = obstacles.nearest_legal_point(Point(5, 5), step=1.0)
        assert not obstacles.blocks_point(escaped)

    def test_push_out_of_obstacles_moves_to_boundary(self):
        obstacles = _set(Rect(0, 0, 10, 10))
        moved = obstacles.push_out_of_obstacles(Point(2, 5))
        assert not obstacles.blocks_point(moved)
        assert Point(2, 5).manhattan_to(moved) <= 5.0 + 1e-9

    def test_push_out_respects_die(self):
        obstacles = _set(Rect(0, 0, 10, 10))
        die = Rect(0, 3, 100, 100)
        moved = obstacles.push_out_of_obstacles(Point(1, 5), die)
        assert die.contains_point(moved)
        assert not obstacles.blocks_point(moved)

    def test_total_blocked_area(self):
        obstacles = _set(Rect(0, 0, 10, 10), Rect(20, 0, 25, 10))
        assert obstacles.total_blocked_area() == pytest.approx(150.0)
