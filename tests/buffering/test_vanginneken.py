"""Tests for the van Ginneken buffer-insertion DP."""

import pytest

from repro.analysis import ClockNetworkEvaluator, EvaluatorConfig
from repro.buffering.vanginneken import Option, VanGinnekenInserter
from repro.cts import ispd09_buffer_library, ispd09_wire_library
from repro.geometry import Obstacle, ObstacleSet, Point, Rect

from repro.testing import make_zst_tree

WIRES = ispd09_wire_library()
BUFS = ispd09_buffer_library()
COMPOSITE = BUFS.by_name("INV_S").parallel(8)


class TestOptionDominance:
    def test_dominates_all_axes(self):
        better = Option(cap=10.0, req=-5.0, tau=1.0)
        worse = Option(cap=20.0, req=-9.0, tau=2.0)
        assert better.dominates(worse)
        assert not worse.dominates(better)

    def test_incomparable_options(self):
        low_cap = Option(cap=10.0, req=-20.0, tau=1.0)
        fast = Option(cap=50.0, req=-5.0, tau=1.0)
        assert not low_cap.dominates(fast)
        assert not fast.dominates(low_cap)

    def test_equal_options_do_not_dominate(self):
        a = Option(cap=10.0, req=-5.0, tau=1.0)
        b = Option(cap=10.0, req=-5.0, tau=1.0)
        assert not a.dominates(b)


class TestPruning:
    def test_dominated_options_removed(self):
        inserter = VanGinnekenInserter(COMPOSITE)
        options = [
            Option(cap=10.0, req=-5.0, tau=1.0),
            Option(cap=20.0, req=-9.0, tau=2.0),
            Option(cap=50.0, req=-2.0, tau=1.0),
        ]
        kept = inserter._prune(options)
        assert len(kept) == 2

    def test_overflow_keeps_frontier_extremes(self):
        inserter = VanGinnekenInserter(COMPOSITE, max_options=4)
        options = [Option(cap=10.0 * i, req=-100.0 + i, tau=0.0) for i in range(1, 40)]
        kept = inserter._prune(options)
        assert len(kept) == 4
        caps = [o.cap for o in kept]
        assert min(caps) == 10.0 and max(caps) == 390.0

    def test_max_options_validation(self):
        with pytest.raises(ValueError):
            VanGinnekenInserter(COMPOSITE, max_options=2)


class TestInsertion:
    def test_buffers_are_inserted_and_tree_stays_valid(self):
        tree = make_zst_tree(sink_count=24)
        result = VanGinnekenInserter(COMPOSITE).insert(tree)
        tree.validate()
        assert result.buffer_count > 0
        assert tree.buffer_count() == result.buffer_count

    def test_insertion_eliminates_slew_violations(self):
        tree = make_zst_tree(sink_count=24)
        evaluator = ClockNetworkEvaluator(EvaluatorConfig(engine="arnoldi", slew_limit=100.0))
        assert evaluator.evaluate(tree).has_slew_violation
        VanGinnekenInserter(COMPOSITE, slew_limit=100.0).insert(tree)
        assert not evaluator.evaluate(tree).has_slew_violation

    def test_insertion_reduces_worst_latency(self):
        tree = make_zst_tree(sink_count=24)
        evaluator = ClockNetworkEvaluator(EvaluatorConfig(engine="arnoldi"))
        before = evaluator.evaluate(tree).max_latency
        VanGinnekenInserter(COMPOSITE).insert(tree)
        after = evaluator.evaluate(tree).max_latency
        assert after < before

    def test_apply_false_leaves_tree_unmodified(self):
        tree = make_zst_tree(sink_count=16)
        result = VanGinnekenInserter(COMPOSITE).insert(tree, apply=False)
        assert result.buffer_count > 0
        assert tree.buffer_count() == 0

    def test_no_buffer_placed_inside_obstacles(self):
        tree = make_zst_tree(sink_count=24, die_size=3000.0)
        obstacles = ObstacleSet([Obstacle(Rect(800, 800, 2000, 2000), name="blk")])
        inserter = VanGinnekenInserter(COMPOSITE, obstacles=obstacles)
        inserter.insert(tree)
        for node in tree.buffers():
            assert not obstacles.blocks_point(node.position)

    def test_stronger_buffer_gives_smaller_delay_estimate(self):
        tree = make_zst_tree(sink_count=24)
        weak = VanGinnekenInserter(BUFS.by_name("INV_S").parallel(4)).insert(tree.clone(), apply=False)
        strong = VanGinnekenInserter(BUFS.by_name("INV_S").parallel(16)).insert(tree.clone(), apply=False)
        assert strong.worst_delay_estimate < weak.worst_delay_estimate

    def test_denser_stations_do_not_hurt(self):
        tree = make_zst_tree(sink_count=20)
        sparse = VanGinnekenInserter(COMPOSITE, station_spacing=600.0).insert(tree.clone(), apply=False)
        dense = VanGinnekenInserter(COMPOSITE, station_spacing=150.0).insert(tree.clone(), apply=False)
        assert dense.worst_delay_estimate <= sparse.worst_delay_estimate * 1.05

    def test_result_slew_feasible_on_open_die(self):
        tree = make_zst_tree(sink_count=24)
        result = VanGinnekenInserter(COMPOSITE).insert(tree)
        assert result.slew_feasible
