"""Tests for the composite-inverter insertion sweep."""

import pytest

from repro.buffering.fast_buffering import insert_buffers_with_sizing
from repro.cts import ispd09_buffer_library

from repro.testing import make_zst_tree

BUFS = ispd09_buffer_library()
LADDER = [BUFS.by_name("INV_S").parallel(k) for k in (8, 16, 24)]


class TestSweep:
    def test_requires_candidates(self):
        with pytest.raises(ValueError):
            insert_buffers_with_sizing(make_zst_tree(8), [])

    def test_invalid_power_reserve(self):
        with pytest.raises(ValueError):
            insert_buffers_with_sizing(make_zst_tree(8), LADDER, power_reserve=1.0)

    def test_input_tree_is_not_mutated(self):
        tree = make_zst_tree(sink_count=20)
        insert_buffers_with_sizing(tree, LADDER, capacitance_limit=1e6)
        assert tree.buffer_count() == 0

    def test_one_outcome_per_candidate(self):
        result = insert_buffers_with_sizing(make_zst_tree(20), LADDER, capacitance_limit=1e6)
        assert len(result.outcomes) == len(LADDER)

    def test_strongest_feasible_candidate_chosen(self):
        result = insert_buffers_with_sizing(make_zst_tree(20), LADDER, capacitance_limit=1e6)
        feasible = [o for o in result.outcomes if o.slew_feasible and o.within_power_budget]
        assert result.chosen is not None
        assert result.chosen.buffer.output_res == min(o.buffer.output_res for o in feasible)

    def test_power_budget_constrains_choice(self):
        generous = insert_buffers_with_sizing(make_zst_tree(20), LADDER, capacitance_limit=1e6)
        # A tight limit leaves only the smallest composites within 90% of budget.
        tight_limit = generous.outcomes[0].total_capacitance * 1.02
        tight = insert_buffers_with_sizing(make_zst_tree(20), LADDER, capacitance_limit=tight_limit)
        assert tight.chosen.buffer.parallel_count <= generous.chosen.buffer.parallel_count

    def test_returned_tree_is_buffered(self):
        result = insert_buffers_with_sizing(make_zst_tree(20), LADDER, capacitance_limit=1e6)
        assert result.tree.buffer_count() == result.chosen.buffer_count
        result.tree.validate()

    def test_chosen_buffer_property(self):
        result = insert_buffers_with_sizing(make_zst_tree(12), LADDER, capacitance_limit=1e6)
        assert result.chosen_buffer is result.chosen.buffer
