"""Tests for buffer-station enumeration and the maximum-load model."""

import pytest

from repro.buffering.candidates import enumerate_stations, max_drivable_capacitance
from repro.cts import ClockTree, Sink, ispd09_buffer_library, ispd09_wire_library
from repro.geometry import Obstacle, ObstacleSet, Point, Rect

WIRES = ispd09_wire_library()
BUFS = ispd09_buffer_library()


def line_tree(length=1000.0):
    tree = ClockTree(Point(0, 0), default_wire=WIRES.widest)
    tree.add_sink(tree.root_id, Point(length, 0), Sink("s", 20.0))
    return tree


class TestMaxDrivableCapacitance:
    def test_stronger_buffer_drives_more(self):
        weak = max_drivable_capacitance(BUFS.by_name("INV_S"), 100.0)
        strong = max_drivable_capacitance(BUFS.by_name("INV_L"), 100.0)
        assert strong > weak

    def test_wire_delay_reduces_budget(self):
        base = max_drivable_capacitance(BUFS.by_name("INV_L"), 100.0)
        shielded = max_drivable_capacitance(BUFS.by_name("INV_L"), 100.0, wire_delay_to_worst_tap=20.0)
        assert shielded < base

    def test_budget_can_reach_zero(self):
        assert max_drivable_capacitance(BUFS.by_name("INV_L"), 100.0, wire_delay_to_worst_tap=1000.0) == 0.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            max_drivable_capacitance(BUFS.by_name("INV_L"), 0.0)
        with pytest.raises(ValueError):
            max_drivable_capacitance(BUFS.by_name("INV_L"), 100.0, margin=1.5)


class TestStationEnumeration:
    def test_station_count_matches_spacing(self):
        stations = enumerate_stations(line_tree(1000.0), spacing=250.0)
        sink_id = [k for k in stations][0]
        assert len(stations[sink_id]) == 3  # at 250, 500, 750

    def test_short_edges_get_no_station(self):
        stations = enumerate_stations(line_tree(200.0), spacing=250.0)
        assert all(len(v) == 0 for v in stations.values())

    def test_positions_lie_on_the_route(self):
        stations = enumerate_stations(line_tree(1000.0), spacing=250.0)
        for station_list in stations.values():
            for station in station_list:
                assert station.position.y == 0.0
                assert 0.0 < station.position.x < 1000.0

    def test_fraction_and_distance_are_consistent(self):
        stations = enumerate_stations(line_tree(1000.0), spacing=250.0)
        for station_list in stations.values():
            for station in station_list:
                assert station.fraction_from_parent == pytest.approx(
                    1.0 - station.distance_from_child / 1000.0
                )

    def test_obstacle_makes_station_illegal(self):
        obstacles = ObstacleSet([Obstacle(Rect(400, -50, 600, 50))])
        stations = enumerate_stations(line_tree(1000.0), spacing=250.0, obstacles=obstacles)
        flags = [s.legal for v in stations.values() for s in v]
        assert flags.count(False) == 1  # the station at x=500

    def test_die_limits_legality(self):
        die = Rect(0, -10, 600, 10)
        stations = enumerate_stations(line_tree(1000.0), spacing=250.0, die=die)
        legal_positions = [s.position.x for v in stations.values() for s in v if s.legal]
        assert all(x <= 600 for x in legal_positions)

    def test_custom_legality_callback(self):
        stations = enumerate_stations(
            line_tree(1000.0), spacing=250.0, legality=lambda p: p.x < 300.0
        )
        flags = {s.position.x: s.legal for v in stations.values() for s in v}
        assert flags[250.0] is True and flags[500.0] is False

    def test_invalid_spacing(self):
        with pytest.raises(ValueError):
            enumerate_stations(line_tree(), spacing=0.0)
