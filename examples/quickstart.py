"""Quickstart: synthesize and optimize a small SoC clock network.

Builds a small synthetic clock-network instance, runs the full Contango flow
(initial ZST/DME tree, obstacle repair, composite-inverter buffering, polarity
correction, and the SPICE-driven optimization sequence), and prints the
per-stage progress table -- the same metrics as Table III of the paper.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import random

from repro.core import ContangoFlow, FlowConfig
from repro.cts.spec import ClockNetworkInstance
from repro.cts.topology import SinkInstance
from repro.geometry import Obstacle, ObstacleSet, Point, Rect


def build_instance(sink_count: int = 48, seed: int = 3) -> ClockNetworkInstance:
    """A 4 mm x 4 mm block with scattered sinks and two macro blockages."""
    rng = random.Random(seed)
    die = Rect(0.0, 0.0, 4000.0, 4000.0)
    obstacles = ObstacleSet(
        [
            Obstacle(Rect(800.0, 1500.0, 1700.0, 2400.0), name="macro_a"),
            Obstacle(Rect(2400.0, 600.0, 3200.0, 1500.0), name="macro_b"),
        ]
    )
    sinks = []
    while len(sinks) < sink_count:
        position = Point(rng.uniform(50.0, 3950.0), rng.uniform(50.0, 3950.0))
        if obstacles.blocks_point(position):
            continue
        sinks.append(
            SinkInstance(
                name=f"ff_{len(sinks)}",
                position=position,
                capacitance=rng.uniform(15.0, 45.0),
            )
        )
    instance = ClockNetworkInstance(
        name="quickstart_block",
        die=die,
        source=Point(2000.0, 0.0),
        sinks=sinks,
        obstacles=obstacles,
        capacitance_limit=40000.0,
    )
    instance.validate()
    return instance


def main() -> None:
    instance = build_instance()
    print(f"instance: {instance.name}  sinks={instance.sink_count}  "
          f"obstacles={len(instance.obstacles)}  cap limit={instance.capacitance_limit:.0f} fF")

    # The transient engine is the most accurate; "arnoldi" runs a few times
    # faster and is a good default for interactive experimentation.
    config = FlowConfig(engine="arnoldi")
    result = ContangoFlow(config).run(instance)

    print(f"\nchosen composite inverter: {result.chosen_buffer}")
    print(f"inverted sinks after buffering: {result.inverted_sinks} "
          f"-> corrective inverters added: {result.polarity_inverters_added}")
    print("\nstage      skew[ps]   CLR[ps]   latency[ps]   slew[ps]   cap[%limit]  buffers")
    for record in result.stages:
        cap_pct = 100.0 * (record.capacitance_utilization or 0.0)
        print(
            f"{record.stage:8s} {record.skew_ps:9.2f} {record.clr_ps:9.2f} "
            f"{record.max_latency_ps:12.1f} {record.worst_slew_ps:9.1f} "
            f"{cap_pct:11.1f} {record.buffer_count:8d}"
        )
    print(f"\nfinal skew  {result.skew:.2f} ps")
    print(f"final CLR   {result.clr:.2f} ps")
    print(f"evaluations {result.total_evaluations}   runtime {result.runtime_s:.1f} s")


if __name__ == "__main__":
    main()
