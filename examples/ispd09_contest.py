"""ISPD'09-style contest comparison: Contango versus the baseline flows.

Generates one ISPD'09-style benchmark (scaled down by default so the example
finishes quickly), synthesizes it with the integrated Contango flow and with
the three non-integrated baselines, and prints a Table IV-style comparison:
CLR, nominal skew, capacitance utilization and runtime per flow.

Run with:  python examples/ispd09_contest.py [benchmark] [sink_scale]
e.g.       python examples/ispd09_contest.py ispd09f22 0.5
"""

from __future__ import annotations

import sys

from repro.baselines import all_baselines
from repro.core import ContangoFlow, FlowConfig
from repro.workloads import generate_ispd09_benchmark


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "ispd09f22"
    sink_scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.5

    instance = generate_ispd09_benchmark(benchmark, sink_scale=sink_scale)
    print(f"benchmark {instance.name}: {instance.sink_count} sinks, "
          f"{len(instance.obstacles)} obstacles, die "
          f"{instance.die.width / 1000:.1f}x{instance.die.height / 1000:.1f} mm")

    config = FlowConfig(engine="arnoldi")
    rows = []

    contango = ContangoFlow(config).run(instance)
    rows.append(contango.summary())

    for baseline in all_baselines(config):
        rows.append(baseline.run(instance).summary())

    print("\nflow               CLR[ps]   skew[ps]   cap[%limit]   slew viol   runtime[s]")
    for row in rows:
        cap_pct = 100.0 * (row["capacitance_utilization"] or 0.0)
        print(
            f"{row['flow']:<18s} {row['clr_ps']:8.2f} {row['skew_ps']:10.2f} "
            f"{cap_pct:12.1f} {row['slew_violations']:11.0f} {row['runtime_s']:12.1f}"
        )

    best_baseline_clr = min(row["clr_ps"] for row in rows[1:])
    if contango.clr > 0:
        print(f"\nContango CLR advantage over best baseline: "
              f"{best_baseline_clr / contango.clr:.2f}x")


if __name__ == "__main__":
    main()
