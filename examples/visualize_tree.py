"""Render an optimized clock tree with the slow-down-slack gradient (Figure 3).

Synthesizes the block-level ISPD'09-style benchmark (fnb1, scaled down by
default), annotates every wire with its slow-down slack, and writes an SVG in
the style of Figure 3 of the paper: sinks as crosses, inverters as blue
rectangles, wires coloured red (no slack) to green (large slack).

Run with:  python examples/visualize_tree.py [sink_scale]
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.analysis import ClockNetworkEvaluator, EvaluatorConfig
from repro.core import ContangoFlow, FlowConfig, annotate_tree_slacks
from repro.viz import save_tree_svg
from repro.workloads import generate_ispd09_benchmark


def main() -> None:
    sink_scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.3
    instance = generate_ispd09_benchmark("ispd09fnb1", sink_scale=sink_scale)
    print(f"synthesizing {instance.name} with {instance.sink_count} sinks ...")

    result = ContangoFlow(FlowConfig(engine="arnoldi")).run(instance)
    print(f"final skew {result.skew:.2f} ps, CLR {result.clr:.2f} ps, "
          f"{result.tree.buffer_count()} inverters")

    evaluator = ClockNetworkEvaluator(
        EvaluatorConfig(engine="arnoldi", slew_limit=instance.slew_limit)
    )
    report = evaluator.evaluate(result.tree)
    annotation = annotate_tree_slacks(result.tree, report)

    out = Path(__file__).resolve().parent / "fnb1_tree.svg"
    save_tree_svg(
        result.tree,
        out,
        annotation=annotation,
        obstacles=instance.obstacles,
        die=instance.die,
        title=f"{instance.name}: skew {result.skew:.1f} ps, CLR {result.clr:.1f} ps",
    )
    print(f"figure written to {out}")


if __name__ == "__main__":
    main()
