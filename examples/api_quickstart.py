"""Public-API quickstart: drive the synthesis system with zero CLI involvement.

One :class:`repro.api.SynthesisService` handles three kinds of calls against
a scenario-lab instance -- a plain synthesis, a Monte Carlo skew-yield sweep,
and a parameter sweep -- while every completed record is appended to a
persistent :class:`repro.store.RunStore` and content-addressed for free.

Run with:  python examples/api_quickstart.py
"""

from __future__ import annotations

import tempfile

from repro.api import JobEvent, SynthesisService
from repro.store import RunStore

INSTANCE = "scenario:banks:sinks=24,clusters=3"


def on_event(event: JobEvent) -> None:
    status = "FAILED" if event.failed else "ok"
    print(f"  [{event.index + 1}/{event.total}] {event.record.job}: {status}")


def main() -> None:
    store_dir = tempfile.mkdtemp(prefix="repro-api-quickstart-")
    store = RunStore(store_dir)

    # One long-lived service: with max_workers > 1 the worker pool would be
    # created once and stay warm across all three calls below.
    with SynthesisService(max_workers=1, store=store, run_id="quickstart") as service:
        # 1. Plain synthesis: a typed RunRecord with the Table IV metrics.
        run = service.synthesize(INSTANCE, engine="elmore")
        summary = run.summary
        print(f"synthesize: {INSTANCE}")
        print(f"  skew {summary.skew_ps:.2f} ps, CLR {summary.clr_ps:.2f} ps, "
              f"wirelength {summary.wirelength_um:.0f} um, "
              f"{summary.evaluations} evaluations")
        print(f"  fingerprint {run.fingerprint[:16]}... "
              f"(content-addresses instance + config + flow)")

        # 2. Monte Carlo: the same network under 256 sampled supply/process
        # scenarios, batched through the vectorized moment path.
        mc = service.monte_carlo(INSTANCE, engine="elmore", samples=256, seed=7)
        dist = mc.yield_
        print(f"monte_carlo: {dist.n_samples} scenarios "
              f"({dist.model['family']} family)")
        print(f"  skew p95 {dist.skew_p95_ps:.2f} ps, "
              f"yield {100.0 * dist.skew_yield:.1f}% @ {dist.skew_limit_ps:g} ps")

        # 3. Sweep: a scenario-family cross product, streamed as events.
        print("sweep: banks x clusters=2,4")
        batch = service.sweep(
            families=["banks"],
            fixed={"sinks": 24},
            sweeps={"clusters": [2, 4]},
            engines=["elmore"],
            on_event=on_event,
        )
        for record in batch.records:
            print(f"  {record.instance}: skew {record.summary.skew_ps:.2f} ps")

    # Everything above landed in the store, queryable by run id and axes.
    records = store.typed_records(run_id="quickstart")
    print(f"store: {len(records)} records in {store.path}")
    fingerprinted = sum(1 for r in records if getattr(r, "fingerprint", None))
    print(f"  {fingerprinted} content-addressed fingerprints")


if __name__ == "__main__":
    main()
