"""Obstacle detouring walk-through (the Figure 2 scenario of the paper).

Constructs a clock subtree whose sinks sit inside and around a large macro
blockage, runs the three obstacle-repair steps (L-shape flipping, maze
rerouting, subtree capture + contour detouring), reports what each step did,
and writes before/after SVG figures next to this script.

Run with:  python examples/obstacle_detour.py
"""

from __future__ import annotations

import random
from pathlib import Path

from repro.core.composite import analyze_composites
from repro.cts import ispd09_buffer_library, ispd09_wire_library
from repro.cts.dme import build_zero_skew_tree
from repro.cts.obstacle_avoid import ObstacleAvoider
from repro.cts.topology import SinkInstance
from repro.geometry import Obstacle, ObstacleSet, Point, Rect
from repro.viz import save_tree_svg


def build_scenario():
    """Sinks clustered inside one big compound obstacle plus scattered outside."""
    rng = random.Random(11)
    die = Rect(0.0, 0.0, 6000.0, 6000.0)
    # Two abutting macros form one compound obstacle, as in the paper's Fig. 2.
    obstacles = ObstacleSet(
        [
            Obstacle(Rect(2000.0, 2200.0, 3500.0, 3800.0), name="macro_left"),
            Obstacle(Rect(3500.0, 2600.0, 4400.0, 3400.0), name="macro_right"),
        ]
    )
    sinks = []
    # A register bank whose pins ended up inside the compound obstacle.
    for i in range(6):
        sinks.append(
            SinkInstance(
                name=f"inner_{i}",
                position=Point(rng.uniform(2200.0, 4200.0), rng.uniform(2400.0, 3600.0)),
                capacitance=rng.uniform(30.0, 60.0),
            )
        )
    # Ordinary sinks scattered around the macro.
    for i in range(26):
        while True:
            position = Point(rng.uniform(100.0, 5900.0), rng.uniform(100.0, 5900.0))
            if not obstacles.blocks_point(position):
                break
        sinks.append(
            SinkInstance(
                name=f"outer_{i}",
                position=position,
                capacitance=rng.uniform(15.0, 40.0),
            )
        )
    return die, obstacles, sinks


def main() -> None:
    out_dir = Path(__file__).resolve().parent
    die, obstacles, sinks = build_scenario()
    wires = ispd09_wire_library()
    buffers = ispd09_buffer_library()
    driver = analyze_composites(buffers).preferred_base

    tree = build_zero_skew_tree(
        sinks, Point(3000.0, 0.0), wires.widest, source_resistance=80.0
    )
    before_wl = tree.total_wirelength()
    before_svg = save_tree_svg(
        tree, out_dir / "detour_before.svg", obstacles=obstacles, die=die,
        title="Before obstacle repair",
    )

    avoider = ObstacleAvoider(obstacles, die=die, driver=driver, slew_limit=100.0)
    crossing_before = len(avoider.find_crossing_edges(tree))
    report = avoider.repair(tree)
    crossing_after = len(avoider.find_crossing_edges(tree))
    after_svg = save_tree_svg(
        tree, out_dir / "detour_after.svg", obstacles=obstacles, die=die,
        title="After obstacle repair (contour detours + reroutes)",
    )

    print("obstacle repair report")
    print(f"  edges checked             {report.edges_checked}")
    print(f"  L-shape flips             {report.lshape_flips}")
    print(f"  maze reroutes             {report.maze_reroutes}")
    print(f"  merge nodes legalized     {report.nodes_legalized}")
    print(f"  enclosed subtrees found   {report.subtrees_captured}")
    print(f"  subtrees detoured         {report.subtrees_detoured}")
    print(f"  added detour wirelength   {report.detour_wirelength:.0f} um")
    print(f"  crossing edges            {crossing_before} -> {crossing_after}")
    print(f"  total wirelength          {before_wl:.0f} -> {tree.total_wirelength():.0f} um")
    print(f"\nfigures written: {before_svg.name}, {after_svg.name}")


if __name__ == "__main__":
    main()
