"""Scalability study on TI-style benchmarks (Table V of the paper).

Generates the synthetic Texas-Instruments-style sink placements at several
sizes, runs the Contango flow on each, and prints the Table V columns: CLR,
skew, maximum latency, total capacitance, evaluation ("SPICE run") count and
runtime.  Sink counts are kept modest by default so the example finishes in a
few minutes; pass larger counts on the command line to push further.

Run with:  python examples/scalability_study.py [count ...]
e.g.       python examples/scalability_study.py 200 500 1000
"""

from __future__ import annotations

import sys

from repro.core import ContangoFlow, FlowConfig
from repro.workloads import generate_ti_benchmark


def main() -> None:
    counts = [int(arg) for arg in sys.argv[1:]] or [200, 500, 1000]
    config = FlowConfig(engine="arnoldi")

    print("sinks     CLR[ps]   skew[ps]   latency[ps]   cap[pF]   evals   runtime[s]")
    for count in counts:
        instance = generate_ti_benchmark(count)
        result = ContangoFlow(config).run(instance)
        report = result.final_report
        print(
            f"{count:6d} {report.clr:10.2f} {report.skew:10.2f} "
            f"{report.max_latency:13.1f} {report.total_capacitance / 1000.0:9.1f} "
            f"{result.total_evaluations:7d} {result.runtime_s:11.1f}"
        )


if __name__ == "__main__":
    main()
